package solver

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// withAlgo returns a fresh solver running the given search core.
func withAlgo(a Algo) *Solver {
	s := New()
	s.Algo = a
	return s
}

// hardMix builds busy(n) ∧ contra: a satisfiable or-chain prefix over
// 3(n+1) fresh booleans followed by an unsatisfiable 2-CNF core over
// two more variables that appear last in decision order. Chronological
// DPLL enumerates busy assignments and re-refutes the core once per
// leaf — exponential in n — while CDCL's first conflict learns a unit
// clause over the core, backjumps to level 0, and refutes immediately.
// This is the hard-formula family behind the X12 benchmark table.
func hardMix(n int) Formula {
	v := func(p string, i int) Formula {
		return BoolVar{Name: p + string(rune('a'+i%26)) + string(rune('0'+i/26))}
	}
	busy := Disj(v("y", 0), v("z", 0), v("w", 0))
	for i := 1; i <= n; i++ {
		link := Disj(NewNot(v("w", i-1)), v("y", i), v("z", i), v("w", i))
		busy = NewAnd(busy, link)
	}
	a, b := BoolVar{Name: "zza"}, BoolVar{Name: "zzb"}
	contra := Conj(
		NewOr(a, b),
		NewOr(a, NewNot(b)),
		NewOr(NewNot(a), b),
		NewOr(NewNot(a), NewNot(b)),
	)
	return NewAnd(busy, contra)
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes, every
// pigeon placed, no hole shared. Unsatisfiable with only exponential
// resolution refutations, so even CDCL must grind through many
// conflicts — the family that exercises clause learning volume,
// activity-based forgetting, and the Luby restart schedule.
func pigeonhole(n int) Formula {
	p := func(i, j int) Formula {
		return BoolVar{Name: fmt.Sprintf("p%d_%d", i, j)}
	}
	f := Formula(BoolConst{Val: true})
	for i := 0; i <= n; i++ {
		holes := make([]Formula, n)
		for j := 0; j < n; j++ {
			holes[j] = p(i, j)
		}
		f = NewAnd(f, Disj(holes...))
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				f = NewAnd(f, NewOr(NewNot(p(i, j)), NewNot(p(k, j))))
			}
		}
	}
	return f
}

// TestDifferentialAlgorithms: on a seeded stream of random formulas,
// CDCL, DPLL, and portfolio must return the same verdict, and that
// verdict must agree with the brute-force small-domain reference
// whenever brute finds a model (solver "unsat" must never contradict
// an existing model; solver "sat" must never contradict brute-unsat,
// since the theory is integer-complete only over the full domain but
// propositionally exact).
func TestDifferentialAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(2010)) // PLDI 2010
	for i := 0; i < 600; i++ {
		f := genFormula(r, 3)
		got := make(map[Algo]bool, 3)
		for _, a := range []Algo{AlgoCDCL, AlgoDPLL, AlgoPortfolio} {
			sat, err := withAlgo(a).Sat(f)
			if err != nil {
				t.Fatalf("#%d %s under %s: %v", i, f, a, err)
			}
			got[a] = sat
		}
		if got[AlgoCDCL] != got[AlgoDPLL] || got[AlgoCDCL] != got[AlgoPortfolio] {
			t.Fatalf("#%d %s: cdcl=%v dpll=%v portfolio=%v",
				i, f, got[AlgoCDCL], got[AlgoDPLL], got[AlgoPortfolio])
		}
		if bruteSat(f) && !got[AlgoCDCL] {
			t.Fatalf("#%d %s: brute found a model but solver says unsat", i, f)
		}
	}
}

// TestCDCLModelsSatisfyFormula: every model CDCL extracts must
// actually satisfy the formula under Model.Eval — the same check the
// engine's counterexample cache performs before trusting one.
func TestCDCLModelsSatisfyFormula(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 400; i++ {
		f := genFormula(r, 3)
		sat, m, err := withAlgo(AlgoCDCL).SatModel(f)
		if err != nil || !sat {
			continue
		}
		ok, err := m.Eval(f)
		if err != nil {
			t.Fatalf("#%d %s: model eval failed: %v", i, f, err)
		}
		if !ok {
			t.Fatalf("#%d %s: extracted model %v does not satisfy the formula", i, f, m)
		}
	}
}

// TestCDCLDeterministic: repeated solves of the same query on fresh
// solvers must agree bit-for-bit — same verdict, same model, same
// decision count. VSIDS ties break on variable index, never on map
// order or randomness, so there is nothing run-dependent to vary.
func TestCDCLDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 120; i++ {
		f := genFormula(r, 4)
		type run struct {
			sat       bool
			model     string
			decisions int
		}
		var first run
		for rep := 0; rep < 3; rep++ {
			s := withAlgo(AlgoCDCL)
			sat, m, err := s.SatModel(f)
			if err != nil {
				t.Fatalf("#%d %s: %v", i, f, err)
			}
			cur := run{sat: sat, decisions: s.Stats.Decisions}
			if m != nil {
				cur.model = fmt.Sprintf("%v/%v", m.Ints, m.Bools)
			}
			if rep == 0 {
				first = cur
			} else if cur != first {
				t.Fatalf("#%d %s: run %d diverged: %+v vs %+v", i, f, rep, cur, first)
			}
		}
	}
}

// TestHardFamilySeparation is the reason CDCL exists: on hardMix the
// learned unit clause over the contradiction core lets CDCL refute in
// a handful of decisions, while chronological DPLL re-refutes the core
// once per busy-prefix assignment. The gap must be at least 10× at
// n=6 (it is exponential in n).
func TestHardFamilySeparation(t *testing.T) {
	f := hardMix(6)

	cd := withAlgo(AlgoCDCL)
	sat, err := cd.Sat(f)
	if err != nil || sat {
		t.Fatalf("cdcl on hardMix: sat=%v err=%v, want unsat", sat, err)
	}
	dp := withAlgo(AlgoDPLL)
	sat, err = dp.Sat(f)
	if err != nil || sat {
		t.Fatalf("dpll on hardMix: sat=%v err=%v, want unsat", sat, err)
	}
	if cd.Stats.Conflicts == 0 || cd.Stats.LearnedClauses == 0 {
		t.Fatalf("cdcl refuted without learning? %+v", cd.Stats)
	}
	if dp.Stats.Decisions < 10*cd.Stats.Decisions {
		t.Fatalf("no separation: dpll=%d decisions, cdcl=%d",
			dp.Stats.Decisions, cd.Stats.Decisions)
	}
}

// TestPortfolioRacesPastDPLLBudget: give both racers a decision budget
// that chronological DPLL must exhaust on hardMix but CDCL barely
// touches. The portfolio must return CDCL's definite verdict, not
// DPLL's exhaustion.
func TestPortfolioRacesPastDPLLBudget(t *testing.T) {
	f := hardMix(8)

	// Confirm the budget really separates the two cores.
	dp := withAlgo(AlgoDPLL)
	dp.MaxDecisions = 200
	if _, err := dp.Sat(f); !errors.Is(err, ErrLimit) {
		t.Fatalf("dpll under budget 200: err=%v, want ErrLimit", err)
	}

	pf := withAlgo(AlgoPortfolio)
	pf.MaxDecisions = 200
	sat, err := pf.Sat(f)
	if err != nil {
		t.Fatalf("portfolio must win via cdcl, got err=%v", err)
	}
	if sat {
		t.Fatal("hardMix is unsat")
	}
}

// TestPortfolioBothExhausted: when both cores run out of budget the
// portfolio must surface ErrLimit (a deterministic, memoizable
// unknown), not hang or invent a verdict.
func TestPortfolioBothExhausted(t *testing.T) {
	pf := withAlgo(AlgoPortfolio)
	pf.MaxDecisions = 1
	f := NewAnd(NewOr(BoolVar{"p"}, BoolVar{"q"}), NewOr(BoolVar{"r"}, BoolVar{"s"}))
	if _, err := pf.Sat(f); !errors.Is(err, ErrLimit) {
		t.Fatalf("err=%v, want ErrLimit", err)
	}
}

// TestReduceDBForgets: with a tiny learned-clause cap, a conflict-heavy
// run must trigger activity-based forgetting without changing the
// verdict.
func TestReduceDBForgets(t *testing.T) {
	s := withAlgo(AlgoCDCL)
	s.MaxLearned = 8
	s.MaxDecisions = 1 << 22
	sat, err := s.Sat(pigeonhole(5))
	if err != nil || sat {
		t.Fatalf("sat=%v err=%v, want unsat (stats %+v)", sat, err, s.Stats)
	}
	if s.Stats.LearnedClauses == 0 {
		t.Fatalf("expected learning on pigeonhole: %+v", s.Stats)
	}
	// Forgetting only fires when the live learned set exceeds the cap;
	// a pigeonhole refutation learns far more than 8 clauses.
	if s.Stats.ForgottenClauses == 0 {
		t.Fatalf("cap of 8 never triggered forgetting: %+v", s.Stats)
	}
}

// TestAssumptionPushPopPinning: verdicts under a Push must match the
// conjunction solved fresh, and a Pop must restore exactly the
// pre-push verdicts even after the incremental core has accumulated
// learned clauses — learned clauses derive from the permanent database
// only, so no pop can unsoundly constrain a later query.
func TestAssumptionPushPopPinning(t *testing.T) {
	r := rand.New(rand.NewSource(1317))
	s := withAlgo(AlgoCDCL) // one long-lived incremental solver
	for i := 0; i < 150; i++ {
		f1 := genFormula(r, 2)
		f2 := genFormula(r, 2)

		base, err := s.Sat(f2)
		if err != nil {
			t.Fatalf("#%d base: %v", i, err)
		}
		wantBase, err := New().Sat(f2)
		if err != nil {
			t.Fatalf("#%d fresh base: %v", i, err)
		}
		if base != wantBase {
			t.Fatalf("#%d incremental base verdict %v, fresh %v (f2=%s)", i, base, wantBase, f2)
		}

		s.Push(f1)
		under, err := s.Sat(f2)
		if err != nil {
			t.Fatalf("#%d under push: %v", i, err)
		}
		want, err := New().Sat(NewAnd(f1, f2))
		if err != nil {
			t.Fatalf("#%d fresh conj: %v", i, err)
		}
		if under != want {
			t.Fatalf("#%d pushed verdict %v, fresh conjunction %v (f1=%s f2=%s)",
				i, under, want, f1, f2)
		}
		s.Pop()

		after, err := s.Sat(f2)
		if err != nil {
			t.Fatalf("#%d after pop: %v", i, err)
		}
		if after != base {
			t.Fatalf("#%d pop did not restore the verdict: before=%v after=%v (f1=%s f2=%s)",
				i, base, after, f1, f2)
		}
	}
}

// TestSatAssumingMatchesConjunction: SatAssuming over a slice of
// conjuncts is the assumption-stack fast path the engine pool uses;
// it must agree with solving the conjunction outright, across both a
// shared incremental solver and fresh ones.
func TestSatAssumingMatchesConjunction(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	s := withAlgo(AlgoCDCL)
	for i := 0; i < 200; i++ {
		fs := []Formula{genFormula(r, 2), genFormula(r, 2), genFormula(r, 2)}
		got, err := s.SatAssuming(fs...)
		if err != nil {
			t.Fatalf("#%d: %v", i, err)
		}
		want, err := New().Sat(Conj(fs...))
		if err != nil {
			t.Fatalf("#%d fresh: %v", i, err)
		}
		if got != want {
			t.Fatalf("#%d SatAssuming=%v, conjunction=%v (%s)", i, got, want, Conj(fs...))
		}
	}
}

// TestSatAssumingModelValid: models extracted under assumptions must
// satisfy every assumption and the query alike.
func TestSatAssumingModelValid(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for i := 0; i < 200; i++ {
		fs := []Formula{genFormula(r, 2), genFormula(r, 2)}
		s := withAlgo(AlgoCDCL)
		sat, m, err := s.SatAssumingModel(fs...)
		if err != nil || !sat {
			continue
		}
		for _, f := range fs {
			ok, err := m.Eval(f)
			if err != nil {
				t.Fatalf("#%d eval: %v", i, err)
			}
			if !ok {
				t.Fatalf("#%d model %v violates assumption %s", i, m, f)
			}
		}
	}
}

// TestIncrementalReuseKeepsClauses: re-solving a refuted query on the
// same solver must reuse the incremental database — the second run may
// not need more decisions than the first, and the permanent clause
// count must not grow (the root is cached by formula string).
func TestIncrementalReuseKeepsClauses(t *testing.T) {
	s := withAlgo(AlgoCDCL)
	f := hardMix(6)
	if sat, err := s.Sat(f); err != nil || sat {
		t.Fatalf("first solve: sat=%v err=%v", sat, err)
	}
	first := s.Stats.Decisions
	if sat, err := s.Sat(f); err != nil || sat {
		t.Fatalf("second solve: sat=%v err=%v", sat, err)
	}
	second := s.Stats.Decisions - first
	if second > first {
		t.Fatalf("warm re-solve needed more decisions (%d) than cold (%d)", second, first)
	}
}

// TestResetDropsIncrementalState: Reset must return the solver to a
// blank slate — same verdicts, fresh statistics baseline semantics —
// so pooled solvers can follow cache flushes.
func TestResetDropsIncrementalState(t *testing.T) {
	s := withAlgo(AlgoCDCL)
	f := hardMix(4)
	if sat, err := s.Sat(f); err != nil || sat {
		t.Fatalf("pre-reset: sat=%v err=%v", sat, err)
	}
	s.Push(BoolVar{"p"})
	s.Reset()
	if n := s.Assumptions(); n != 0 {
		t.Fatalf("reset left %d assumptions", n)
	}
	if sat, err := s.Sat(f); err != nil || sat {
		t.Fatalf("post-reset: sat=%v err=%v", sat, err)
	}
	if sat, err := s.Sat(BoolVar{"p"}); err != nil || !sat {
		t.Fatalf("post-reset trivial query: sat=%v err=%v", sat, err)
	}
}

// TestRestartsFire: a long conflict-heavy refutation must cross the
// Luby restart schedule at least once, and restarting must not change
// the verdict.
func TestRestartsFire(t *testing.T) {
	s := withAlgo(AlgoCDCL)
	s.MaxDecisions = 1 << 22
	sat, err := s.Sat(pigeonhole(5))
	if err != nil || sat {
		t.Fatalf("sat=%v err=%v, want unsat (stats %+v)", sat, err, s.Stats)
	}
	if s.Stats.Conflicts < 100 {
		t.Fatalf("pigeonhole(5) should conflict >100 times, got %+v", s.Stats)
	}
	if s.Stats.Restarts == 0 {
		t.Fatalf("crossed the restart threshold without restarting: %+v", s.Stats)
	}
}

// TestParseAlgo pins the CLI surface: accepted spellings, the default,
// and the error text for junk.
func TestParseAlgo(t *testing.T) {
	cases := []struct {
		in   string
		want Algo
		ok   bool
	}{
		{"", AlgoCDCL, true},
		{"cdcl", AlgoCDCL, true},
		{"dpll", AlgoDPLL, true},
		{"portfolio", AlgoPortfolio, true},
		{"minisat", AlgoCDCL, false},
	}
	for _, c := range cases {
		got, err := ParseAlgo(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Fatalf("ParseAlgo(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, a := range []Algo{AlgoCDCL, AlgoDPLL, AlgoPortfolio} {
		rt, err := ParseAlgo(a.String())
		if err != nil || rt != a {
			t.Fatalf("round trip %v: got %v, %v", a, rt, err)
		}
	}
}

// TestTheoryConflictsIncremental: theory reasoning must hold across
// the assumption stack — integer constraints pushed as assumptions
// must participate in conflicts with the query's own atoms.
func TestTheoryConflictsIncremental(t *testing.T) {
	s := withAlgo(AlgoCDCL)
	s.Push(Lt{x(), c(0)})
	sat, err := s.Sat(Gt(x(), c(0)))
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Fatal("x<0 ∧ x>0 must be unsat")
	}
	s.Pop()
	sat, err = s.Sat(Gt(x(), c(0)))
	if err != nil || !sat {
		t.Fatalf("after pop x>0 must be sat: sat=%v err=%v", sat, err)
	}
}

// TestCDCLNilAndUnknownInputs: the CDCL front end must reject the
// same malformed inputs as the DPLL path, with the same messages.
func TestCDCLNilAndUnknownInputs(t *testing.T) {
	s := withAlgo(AlgoCDCL)
	if _, err := s.Sat(nil); err == nil {
		t.Fatal("nil formula must error, not panic")
	}
	if _, err := s.Sat(Eq{nil, c(1)}); err == nil {
		t.Fatal("nil term must error, not panic")
	}
}

// TestCDCLMaxAtomsGate: the atom budget applies to the union of root
// closures with the same error shape as DPLL.
func TestCDCLMaxAtomsGate(t *testing.T) {
	s := withAlgo(AlgoCDCL)
	s.MaxAtoms = 2
	f := Conj(BoolVar{"a"}, BoolVar{"b"}, BoolVar{"c"})
	_, err := s.Sat(f)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err=%v, want ErrLimit", err)
	}
}
