package solver

import (
	"testing"
)

func x() Term        { return IntVar{"x"} }
func y() Term        { return IntVar{"y"} }
func z() Term        { return IntVar{"z"} }
func c(v int64) Term { return IntConst{v} }

func mustSat(t *testing.T, f Formula) {
	t.Helper()
	got, err := New().Sat(f)
	if err != nil {
		t.Fatalf("Sat(%s): %v", f, err)
	}
	if !got {
		t.Fatalf("Sat(%s) = false, want true", f)
	}
}

func mustUnsat(t *testing.T, f Formula) {
	t.Helper()
	got, err := New().Sat(f)
	if err != nil {
		t.Fatalf("Sat(%s): %v", f, err)
	}
	if got {
		t.Fatalf("Sat(%s) = true, want false", f)
	}
}

func mustValid(t *testing.T, f Formula) {
	t.Helper()
	got, err := New().Valid(f)
	if err != nil {
		t.Fatalf("Valid(%s): %v", f, err)
	}
	if !got {
		t.Fatalf("Valid(%s) = false, want true", f)
	}
}

func mustInvalid(t *testing.T, f Formula) {
	t.Helper()
	got, err := New().Valid(f)
	if err != nil {
		t.Fatalf("Valid(%s): %v", f, err)
	}
	if got {
		t.Fatalf("Valid(%s) = true, want false", f)
	}
}

func TestConstants(t *testing.T) {
	mustSat(t, True)
	mustUnsat(t, False)
	mustValid(t, True)
	mustInvalid(t, False)
}

func TestBooleanStructure(t *testing.T) {
	p, q := BoolVar{"p"}, BoolVar{"q"}
	mustSat(t, p)
	mustSat(t, NewNot(p))
	mustUnsat(t, NewAnd(p, NewNot(p)))
	mustValid(t, NewOr(p, NewNot(p)))
	mustValid(t, Implies(NewAnd(p, q), p))
	mustInvalid(t, Implies(p, q))
	mustValid(t, Iff{p, p})
	mustSat(t, Iff{p, q})
	mustUnsat(t, NewAnd(Iff{p, q}, NewAnd(p, NewNot(q))))
	// De Morgan as a validity.
	mustValid(t, Iff{NewNot(NewAnd(p, q)), NewOr(NewNot(p), NewNot(q))})
}

func TestArithmeticBasics(t *testing.T) {
	mustValid(t, Eq{Add{x(), c(0)}, x()})
	mustValid(t, Eq{Add{x(), y()}, Add{y(), x()}})
	mustSat(t, Eq{x(), c(3)})
	mustUnsat(t, NewAnd(Eq{x(), c(3)}, Eq{x(), c(4)}))
	mustUnsat(t, NewAnd(Eq{x(), y()}, Neq(x(), y())))
	mustSat(t, Neq(x(), y()))
	mustValid(t, Implies(NewAnd(Eq{x(), y()}, Eq{y(), z()}), Eq{x(), z()}))
	// x + 1 = x is unsatisfiable.
	mustUnsat(t, Eq{Add{x(), c(1)}, x()})
	// 2x = x + x is valid.
	mustValid(t, Eq{Mul{2, x()}, Add{x(), x()}})
}

func TestInequalities(t *testing.T) {
	mustSat(t, Lt{x(), y()})
	mustUnsat(t, NewAnd(Lt{x(), y()}, Lt{y(), x()}))
	mustUnsat(t, NewAnd(Le{x(), y()}, Lt{y(), x()}))
	mustSat(t, NewAnd(Le{x(), y()}, Le{y(), x()}))
	mustValid(t, Implies(NewAnd(Le{x(), y()}, Le{y(), x()}), Eq{x(), y()}))
	mustValid(t, Implies(NewAnd(Lt{x(), y()}, Lt{y(), z()}), Lt{x(), z()}))
	mustUnsat(t, NewAnd(Gt(x(), c(0)), NewAnd(Lt{x(), c(5)}, Gt(x(), c(10)))))
	mustValid(t, NewOr(Le{x(), c(0)}, Gt(x(), c(0))))
	// Trichotomy as a tautology: the exhaustive() check for the
	// sign-refinement example in Section 2 of the paper.
	taut, err := New().Tautology(Gt(x(), c(0)), Eq{x(), c(0)}, Lt{x(), c(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !taut {
		t.Fatal("trichotomy should be a tautology")
	}
	// Dropping one disjunct is not exhaustive.
	taut, err = New().Tautology(Gt(x(), c(0)), Lt{x(), c(0)})
	if err != nil {
		t.Fatal(err)
	}
	if taut {
		t.Fatal("x>0 or x<0 must not be a tautology")
	}
}

func TestMixedBoolArith(t *testing.T) {
	p := BoolVar{"p"}
	f := NewAnd(NewOr(p, Eq{x(), c(1)}), NewAnd(NewNot(p), Neq(x(), c(1))))
	mustUnsat(t, f)
	g := NewAnd(NewOr(p, Eq{x(), c(1)}), NewNot(p))
	mustSat(t, g)
}

func TestGaussianChains(t *testing.T) {
	// x = y+1, y = z+1, z = 0 entails x = 2.
	sys := Conj(
		Eq{x(), Add{y(), c(1)}},
		Eq{y(), Add{z(), c(1)}},
		Eq{z(), c(0)},
	)
	mustValid(t, Implies(sys, Eq{x(), c(2)}))
	mustUnsat(t, NewAnd(sys, Neq(x(), c(2))))
}

func TestUninterpretedApps(t *testing.T) {
	fx := App{"f", []Term{x()}}
	fx2 := App{"f", []Term{Add{x(), c(0)}}} // normalizes to the same key
	fy := App{"f", []Term{y()}}
	mustValid(t, Eq{fx, fx2})
	mustSat(t, Neq(fx, fy))
	mustSat(t, Eq{fx, fy})
	// Documented incompleteness: syntactic congruence does not merge
	// f(x) and f(y) under x=y, so this is reported satisfiable. That
	// is the conservative direction (see package comment).
	mustSat(t, NewAnd(Eq{x(), y()}, Neq(fx, fy)))
	// But unsat answers remain trustworthy.
	mustUnsat(t, NewAnd(Eq{fx, c(1)}, Eq{fx, c(2)}))
}

func TestAtomInterning(t *testing.T) {
	// x = y and y = x must be the same atom: their conjunction with a
	// negation of one is unsat without any theory case split beyond
	// the shared atom's polarity conflict.
	mustUnsat(t, NewAnd(Eq{x(), y()}, NewNot(Eq{y(), x()})))
	mustUnsat(t, NewAnd(Le{x(), y()}, NewNot(Ge(y(), x()))))
}

func TestRationalOverApproximation(t *testing.T) {
	// 2x = 1 has no integer solution but a rational one; the solver
	// must answer "sat" (conservative direction).
	mustSat(t, Eq{Mul{2, x()}, c(1)})
}

func TestResourceBounds(t *testing.T) {
	s := New()
	s.MaxAtoms = 2
	f := Conj(Eq{x(), c(1)}, Eq{y(), c(2)}, Eq{z(), c(3)})
	if _, err := s.Sat(f); err == nil {
		t.Fatal("expected resource error with MaxAtoms=2")
	}
}

func TestNilInputs(t *testing.T) {
	if _, err := New().Sat(nil); err == nil {
		t.Fatal("expected error for nil formula")
	}
	if _, err := New().Sat(Eq{nil, c(1)}); err == nil {
		t.Fatal("expected error for nil term")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New()
	if _, err := s.Sat(NewAnd(BoolVar{"p"}, Eq{x(), c(1)})); err != nil {
		t.Fatal(err)
	}
	if s.Stats.SatQueries != 1 {
		t.Fatalf("SatQueries = %d, want 1", s.Stats.SatQueries)
	}
	if s.Stats.Atoms == 0 || s.Stats.TheoryChecks == 0 {
		t.Fatalf("expected nonzero atoms and theory checks, got %+v", s.Stats)
	}
}

func TestIteEncodedGuards(t *testing.T) {
	// The SEIF-DEFER rule produces guard-shaped formulas like
	// (g && pc1) || (!g && pc2); exhaustiveness of such encodings must
	// be decidable.
	g := BoolVar{"g"}
	pc1 := Gt(x(), c(0))
	pc2 := Le{x(), c(0)}
	taut, err := New().Tautology(NewAnd(g, pc1), NewAnd(g, NewNot(pc1)), NewNot(g))
	if err != nil {
		t.Fatal(err)
	}
	if !taut {
		t.Fatal("guard split should be exhaustive")
	}
	taut, err = New().Tautology(NewAnd(g, pc1), NewAnd(NewNot(g), pc2))
	if err != nil {
		t.Fatal(err)
	}
	if taut {
		t.Fatal("missing the (g && x<=0) corner: not a tautology")
	}
}
