package solver

// Formula is a boolean-sorted formula over integer atoms and boolean
// variables.
type Formula interface {
	isFormula()
	String() string
}

// BoolConst is true or false.
type BoolConst struct{ Val bool }

// BoolVar is a boolean-sorted variable (a symbolic boolean α:bool).
type BoolVar struct{ Name string }

// Not is logical negation.
type Not struct{ X Formula }

// And is conjunction.
type And struct{ X, Y Formula }

// Or is disjunction.
type Or struct{ X, Y Formula }

// Eq is integer equality between two terms.
type Eq struct{ X, Y Term }

// Le is X <= Y.
type Le struct{ X, Y Term }

// Lt is X < Y.
type Lt struct{ X, Y Term }

// Iff is boolean equivalence; it is what integer-equality on
// bool-sorted symbolic expressions translates to.
type Iff struct{ X, Y Formula }

func (BoolConst) isFormula() {}
func (BoolVar) isFormula()   {}
func (Not) isFormula()       {}
func (And) isFormula()       {}
func (Or) isFormula()        {}
func (Eq) isFormula()        {}
func (Le) isFormula()        {}
func (Lt) isFormula()        {}
func (Iff) isFormula()       {}

func (f BoolConst) String() string {
	if f.Val {
		return "true"
	}
	return "false"
}
func (f BoolVar) String() string { return f.Name }
func (f Not) String() string     { return "!" + f.X.String() }
func (f And) String() string     { return "(" + f.X.String() + " && " + f.Y.String() + ")" }
func (f Or) String() string      { return "(" + f.X.String() + " || " + f.Y.String() + ")" }
func (f Eq) String() string      { return "(" + f.X.String() + " == " + f.Y.String() + ")" }
func (f Le) String() string      { return "(" + f.X.String() + " <= " + f.Y.String() + ")" }
func (f Lt) String() string      { return "(" + f.X.String() + " < " + f.Y.String() + ")" }
func (f Iff) String() string     { return "(" + f.X.String() + " <=> " + f.Y.String() + ")" }

// True and False are the boolean constants.
var (
	True  Formula = BoolConst{true}
	False Formula = BoolConst{false}
)

// NewAnd conjoins with constant folding.
func NewAnd(x, y Formula) Formula {
	if bx, ok := x.(BoolConst); ok {
		if bx.Val {
			return y
		}
		return False
	}
	if by, ok := y.(BoolConst); ok {
		if by.Val {
			return x
		}
		return False
	}
	return And{x, y}
}

// NewOr disjoins with constant folding.
func NewOr(x, y Formula) Formula {
	if bx, ok := x.(BoolConst); ok {
		if bx.Val {
			return True
		}
		return y
	}
	if by, ok := y.(BoolConst); ok {
		if by.Val {
			return True
		}
		return x
	}
	return Or{x, y}
}

// NewNot negates with constant folding and double-negation elimination.
func NewNot(x Formula) Formula {
	switch x := x.(type) {
	case BoolConst:
		return BoolConst{!x.Val}
	case Not:
		return x.X
	}
	return Not{x}
}

// Conj conjoins a list of formulas.
func Conj(fs ...Formula) Formula {
	acc := True
	for _, f := range fs {
		acc = NewAnd(acc, f)
	}
	return acc
}

// Disj disjoins a list of formulas.
func Disj(fs ...Formula) Formula {
	acc := False
	for _, f := range fs {
		acc = NewOr(acc, f)
	}
	return acc
}

// Implies builds x -> y.
func Implies(x, y Formula) Formula { return NewOr(NewNot(x), y) }

// Ge builds x >= y.
func Ge(x, y Term) Formula { return Le{y, x} }

// Gt builds x > y.
func Gt(x, y Term) Formula { return Lt{y, x} }

// Neq builds x != y.
func Neq(x, y Term) Formula { return NewNot(Eq{x, y}) }
