package solver

import "testing"

// gd is a non-constant guard for ite tests.
func gd() Formula { return BoolVar{"g"} }

func TestNewIteFolding(t *testing.T) {
	if got := NewIte(BoolConst{true}, x(), y()); !termEq(got, x()) {
		t.Fatalf("ite(true, x, y) = %s, want x", got)
	}
	if got := NewIte(BoolConst{false}, x(), y()); !termEq(got, y()) {
		t.Fatalf("ite(false, x, y) = %s, want y", got)
	}
	if got := NewIte(gd(), x(), x()); !termEq(got, x()) {
		t.Fatalf("ite(g, x, x) = %s, want x", got)
	}
	// Polarity canonicalization: a negated guard swaps the arms, so the
	// two spellings of one function are one structure (the memo-key
	// property the engine's hash-consing relies on).
	a, b := NewIte(gd(), x(), y()), NewIte(Not{gd()}, y(), x())
	if !termEq(a, b) {
		t.Fatalf("ite(g, x, y) = %s but ite(!g, y, x) = %s; want one canonical form", a, b)
	}
}

// TestIteEliminationDecides drives ite terms through the full solver:
// elimIte lowers each distinct ite to a fresh defined variable, and the
// guarded defining clauses must pin it to exactly one arm under every
// valuation of the guard.
func TestIteEliminationDecides(t *testing.T) {
	ite := NewIte(gd(), c(1), c(2))

	// Under the guard the ite IS the then-arm; against it, the else-arm.
	mustSat(t, And{Eq{ite, c(1)}, gd()})
	mustUnsat(t, And{Eq{ite, c(2)}, gd()})
	mustSat(t, And{Eq{ite, c(2)}, Not{gd()}})
	mustUnsat(t, And{Eq{ite, c(1)}, Not{gd()}})

	// An ite can never escape its arms: ite = x ∨ ite = y is valid.
	free := NewIte(gd(), x(), y())
	mustUnsat(t, And{Not{Eq{free, x()}}, Not{Eq{free, y()}}})

	// Arithmetic over the lowered variable stays linear: a merged cell
	// participates in downstream atoms like any plain term.
	mustSat(t, Eq{Add{ite, c(10)}, c(11)})
	mustUnsat(t, And{Eq{Add{ite, c(10)}, c(13)}, gd()})

	// Nested ites lower recursively.
	nested := NewIte(BoolVar{"h"}, NewIte(gd(), c(1), c(2)), c(3))
	mustSat(t, And{Eq{nested, c(2)}, BoolVar{"h"}})
	mustUnsat(t, And{And{Eq{nested, c(1)}, BoolVar{"h"}}, Not{gd()}})
	mustUnsat(t, And{Eq{nested, c(3)}, BoolVar{"h"}})

	// The two polarity spellings denote the same function even when the
	// structures are built by hand (bypassing NewIte's normalization).
	handA := Ite{G: gd(), X: x(), Y: y()}
	handB := Ite{G: Not{gd()}, X: y(), Y: x()}
	mustUnsat(t, Not{Eq{handA, handB}})
}

// TestIteEliminationSharesDefinitions pins the definitional-extension
// economics: k occurrences of one ite must produce one fresh variable,
// not k, so a merged cell read many times costs one definition.
func TestIteEliminationSharesDefinitions(t *testing.T) {
	ite := NewIte(gd(), x(), y())
	f := And{Eq{ite, c(1)}, Le{ite, c(5)}}
	lw := &iteLower{vars: map[string]IntVar{}}
	lw.formula(f)
	if len(lw.vars) != 1 {
		t.Fatalf("two occurrences of one ite produced %d definitions, want 1", len(lw.vars))
	}
	// 2 defining clauses per distinct ite.
	if len(lw.defs) != 2 {
		t.Fatalf("one ite produced %d defining clauses, want 2", len(lw.defs))
	}
	// A formula without ites is returned untouched (and allocation-free).
	plain := And{Eq{x(), c(1)}, Le{y(), c(5)}}
	if got := elimIte(plain); got != Formula(plain) {
		t.Fatalf("elimIte changed an ite-free formula: %s", got)
	}
}
