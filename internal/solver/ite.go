package solver

import (
	"strconv"
)

// elimIte removes every Ite term from f by definitional extension:
// each distinct ite(G, X, Y) becomes a fresh variable t constrained by
//
//	(¬G ∨ t = X) ∧ (G ∨ t = Y)
//
// conjoined onto the lowered formula. The two clauses pin t to exactly
// one arm under every valuation of G, so the extension is
// equisatisfiable with the original regardless of the polarity the ite
// occurred under, and the result is in the solver's core language
// (linear atoms over plain terms). Identical ites (by canonical key)
// share one definition, so a merged cell read k times costs one fresh
// variable, not k.
//
// Formulas without ites are returned unchanged (pointer-identical):
// the scan that decides this allocates nothing, so the lowering is
// free for the overwhelming majority of queries.
func elimIte(f Formula) Formula {
	if !formulaHasIte(f) {
		return f
	}
	lw := &iteLower{vars: map[string]IntVar{}}
	g := lw.formula(f)
	all := make([]Formula, 0, len(lw.defs)+1)
	all = append(all, g)
	all = append(all, lw.defs...)
	return Conj(all...)
}

func formulaHasIte(f Formula) bool {
	switch f := f.(type) {
	case Not:
		return formulaHasIte(f.X)
	case And:
		return formulaHasIte(f.X) || formulaHasIte(f.Y)
	case Or:
		return formulaHasIte(f.X) || formulaHasIte(f.Y)
	case Iff:
		return formulaHasIte(f.X) || formulaHasIte(f.Y)
	case Eq:
		return termHasIte(f.X) || termHasIte(f.Y)
	case Le:
		return termHasIte(f.X) || termHasIte(f.Y)
	case Lt:
		return termHasIte(f.X) || termHasIte(f.Y)
	}
	return false
}

func termHasIte(t Term) bool {
	switch t := t.(type) {
	case Add:
		return termHasIte(t.X) || termHasIte(t.Y)
	case Neg:
		return termHasIte(t.X)
	case Mul:
		return termHasIte(t.X)
	case App:
		for _, a := range t.Args {
			if termHasIte(a) {
				return true
			}
		}
		return false
	case Ite:
		return true
	}
	return false
}

// iteLower is the state of one lowering pass: a fresh-variable counter,
// the accumulated defining clauses, and the key→variable table that
// shares definitions between identical ites. The CDCL core keeps one
// iteLower alive across queries (distinct ites must never collide on a
// "$ite<n>" name once encodings persist) and sets defsByKey/used to
// recover, per formula, exactly the definitions that formula depends
// on; elimIte's one-shot use leaves both nil.
type iteLower struct {
	n    int
	defs []Formula
	vars map[string]IntVar

	defsByKey map[string][2]Formula
	used      map[string]bool
}

func (lw *iteLower) formula(f Formula) Formula {
	switch f := f.(type) {
	case Not:
		return NewNot(lw.formula(f.X))
	case And:
		return And{lw.formula(f.X), lw.formula(f.Y)}
	case Or:
		return Or{lw.formula(f.X), lw.formula(f.Y)}
	case Iff:
		return Iff{lw.formula(f.X), lw.formula(f.Y)}
	case Eq:
		return Eq{lw.term(f.X), lw.term(f.Y)}
	case Le:
		return Le{lw.term(f.X), lw.term(f.Y)}
	case Lt:
		return Lt{lw.term(f.X), lw.term(f.Y)}
	}
	return f
}

func (lw *iteLower) term(t Term) Term {
	switch t := t.(type) {
	case Add:
		return Add{lw.term(t.X), lw.term(t.Y)}
	case Neg:
		return Neg{lw.term(t.X)}
	case Mul:
		return Mul{K: t.K, X: lw.term(t.X)}
	case App:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = lw.term(a)
		}
		return App{Fn: t.Fn, Args: args}
	case Ite:
		// Lower children first: the guard may contain ites inside its
		// atoms and the arms may nest further ites.
		g := lw.formula(t.G)
		x := lw.term(t.X)
		y := lw.term(t.Y)
		// Re-fold: lowering nested ites can expose a trivial shape that
		// NewIte would have collapsed.
		if c, ok := g.(BoolConst); ok {
			if c.Val {
				return x
			}
			return y
		}
		if termEq(x, y) {
			return x
		}
		key := string(appendTermKey(nil, Ite{G: g, X: x, Y: y}))
		if lw.used != nil {
			lw.used[key] = true
		}
		if v, ok := lw.vars[key]; ok {
			return v
		}
		// "$ite<n>" cannot collide with client variables: the executors
		// and the translator never emit '$'.
		v := IntVar{Name: "$ite" + strconv.Itoa(lw.n)}
		lw.n++
		lw.vars[key] = v
		d1 := Or{NewNot(g), Eq{v, x}}
		d2 := Or{g, Eq{v, y}}
		lw.defs = append(lw.defs, d1, d2)
		if lw.defsByKey != nil {
			lw.defsByKey[key] = [2]Formula{d1, d2}
		}
		return v
	}
	return t
}
