package solver

import (
	"context"
	"errors"
	"sync"
)

// This file is the incremental front door of the solver: an assumption
// stack mirroring the engine's path conditions, the SatAssuming entry
// points that decide a query as a set of conjuncts instead of one flat
// conjunction, and the dispatch between the CDCL core, the legacy DPLL
// oracle, and the portfolio racing both.
//
// Keeping the conjuncts separate is what makes the CDCL core
// incremental: each conjunct encodes to one root literal, memoized for
// the solver's lifetime, and a query asserts its roots as assumption
// levels over the persistent learned-clause database. A forked path
// condition that shares its prefix with the previous query therefore
// pays only for its new conjunct.

// Push asserts f for every subsequent query until the matching Pop.
// Push/Pop frames mirror solver.PC forks: a child context pushes its
// new conjunct, queries, and pops, without re-sending the prefix.
func (s *Solver) Push(f Formula) {
	s.stack = append(s.stack, f)
}

// Pop retracts the most recent Push. Panics when the stack is empty,
// mirroring an unbalanced frame bug at the call site.
func (s *Solver) Pop() {
	s.stack = s.stack[:len(s.stack)-1]
}

// Assumptions returns the current stack depth.
func (s *Solver) Assumptions() int { return len(s.stack) }

// Reset drops the assumption stack and every retained encoding and
// learned clause. Pool owners call it when their cache generation
// turns over; bounds, context, and stats are untouched.
func (s *Solver) Reset() {
	s.d = nil
	s.stack = nil
}

// SatAssuming reports whether the conjunction of the assumption stack
// and fs is satisfiable.
func (s *Solver) SatAssuming(fs ...Formula) (bool, error) {
	ok, _, err := s.satAssuming(false, fs)
	return ok, err
}

// SatAssumingModel is SatAssuming plus a witness when satisfiable (the
// model may be nil even on sat; extraction is best-effort).
func (s *Solver) SatAssumingModel(fs ...Formula) (bool, *Model, error) {
	return s.satAssuming(true, fs)
}

// satAssuming is the single dispatch point for every query.
func (s *Solver) satAssuming(wantModel bool, fs []Formula) (bool, *Model, error) {
	if err := s.ctxErr("solver.sat"); err != nil {
		return false, nil, err
	}
	s.Stats.SatQueries++
	all := fs
	if len(s.stack) > 0 {
		all = make([]Formula, 0, len(s.stack)+len(fs))
		all = append(all, s.stack...)
		all = append(all, fs...)
	}
	switch s.Algo {
	case AlgoDPLL:
		return s.satDPLL(Conj(all...), wantModel)
	case AlgoPortfolio:
		return s.satPortfolio(all, wantModel)
	default:
		return s.satCDCL(all, wantModel)
	}
}

// satCDCL answers through the persistent CDCL core, creating it on
// first use.
func (s *Solver) satCDCL(fs []Formula, wantModel bool) (bool, *Model, error) {
	if s.d == nil {
		s.d = newCDCL(s)
	}
	return s.d.solve(fs, wantModel)
}

// satPortfolio races the CDCL core against a scratch DPLL solver on
// the same query; the first definite answer wins and cancels the
// loser. Both cores are sound and complete modulo resource bounds, so
// whichever finishes first the verdict is the same — the race only
// decides how fast it arrives, which keeps portfolio mode inside the
// engine's determinism contract (verdicts, not stats).
func (s *Solver) satPortfolio(fs []Formula, wantModel bool) (bool, *Model, error) {
	base := s.Ctx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	scratch := &Solver{
		Algo:         AlgoDPLL,
		MaxAtoms:     s.MaxAtoms,
		MaxDecisions: s.MaxDecisions,
		MaxLearned:   s.MaxLearned,
		Ctx:          ctx,
		Injector:     s.Injector,
	}

	type res struct {
		ok  bool
		m   *Model
		err error
	}
	var dpll res
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		dpll.ok, dpll.m, dpll.err = scratch.satDPLL(Conj(fs...), wantModel)
		if dpll.err == nil {
			cancel()
		}
	}()

	// The CDCL side runs in this goroutine against s itself, so its
	// learned clauses persist for the next query; only the context is
	// swapped for the race.
	oldCtx := s.Ctx
	s.Ctx = ctx
	var c res
	c.ok, c.m, c.err = s.satCDCL(fs, wantModel)
	if c.err == nil {
		cancel()
	}
	wg.Wait()
	s.Ctx = oldCtx
	s.Stats.TheoryChecks += scratch.Stats.TheoryChecks
	s.Stats.Decisions += scratch.Stats.Decisions
	s.Stats.Atoms += scratch.Stats.Atoms

	if c.err == nil {
		return c.ok, c.m, nil
	}
	if dpll.err == nil {
		return dpll.ok, dpll.m, nil
	}
	// Both failed. Prefer a classified fault over a plain resource
	// limit: the engine memoizes ErrLimit as a permanent unknown, and
	// a query one core merely never finished (timeout, cancellation)
	// must not be recorded as forever-undecidable.
	if errors.Is(c.err, ErrLimit) && !errors.Is(dpll.err, ErrLimit) {
		return false, nil, dpll.err
	}
	return false, nil, c.err
}
