package solver

import "fmt"

// Algo selects the search core behind Sat, Valid, and SatAssuming.
type Algo int

const (
	// AlgoCDCL is the conflict-driven clause-learning core (cdcl.go):
	// one-sided Tseitin CNF over the NNF front end, two-watched-literal
	// unit propagation, 1-UIP conflict analysis with non-chronological
	// backjumping, deterministic VSIDS decisions, a bounded learned-
	// clause database, and incremental assumption solving that retains
	// encodings and learned clauses across queries. The zero value, so
	// every Solver defaults to it.
	AlgoCDCL Algo = iota
	// AlgoDPLL is the original chronological tree search, kept as the
	// differential oracle behind -solver=dpll.
	AlgoDPLL
	// AlgoPortfolio races the CDCL core against a scratch DPLL solver
	// per query: the first definite answer wins and the loser is
	// canceled through the run context.
	AlgoPortfolio
)

func (a Algo) String() string {
	switch a {
	case AlgoCDCL:
		return "cdcl"
	case AlgoDPLL:
		return "dpll"
	case AlgoPortfolio:
		return "portfolio"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo parses a -solver flag or request value. The empty string
// selects the default (CDCL).
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "", "cdcl":
		return AlgoCDCL, nil
	case "dpll":
		return AlgoDPLL, nil
	case "portfolio":
		return AlgoPortfolio, nil
	}
	return 0, fmt.Errorf("unknown solver algorithm %q (want cdcl, dpll, or portfolio)", s)
}

// Config carries the tunable solver knobs as one value, so option
// structs across the engine, the facade, and the CLIs thread them
// without re-declaring four fields each. The zero value means "all
// defaults": CDCL with New()'s resource bounds.
type Config struct {
	// Algo selects the search core (zero value = CDCL).
	Algo Algo
	// MaxAtoms / MaxDecisions / MaxLearned override the corresponding
	// Solver bounds when positive; zero keeps the defaults.
	MaxAtoms     int
	MaxDecisions int
	MaxLearned   int
}

// Apply overrides s's knobs with c's non-zero fields and returns s.
func (c Config) Apply(s *Solver) *Solver {
	s.Algo = c.Algo
	if c.MaxAtoms > 0 {
		s.MaxAtoms = c.MaxAtoms
	}
	if c.MaxDecisions > 0 {
		s.MaxDecisions = c.MaxDecisions
	}
	if c.MaxLearned > 0 {
		s.MaxLearned = c.MaxLearned
	}
	return s
}

// NewSolver returns a fresh solver with c applied.
func (c Config) NewSolver() *Solver { return c.Apply(New()) }

// CustomBounds reports whether c requests non-default resource bounds.
// The engine keeps private pooled solver instances in that case —
// memoized "unknown" verdicts are only deterministic for fixed bounds —
// while Algo alone is applied per borrow to shared instances.
func (c Config) CustomBounds() bool {
	return c.MaxAtoms > 0 || c.MaxDecisions > 0 || c.MaxLearned > 0
}
