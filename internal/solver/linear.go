package solver

import (
	"fmt"
	"math/big"
	"strings"
)

// lin is a linear combination of variables with rational coefficients
// plus a rational constant. Variable keys are canonical strings:
// "v:<name>" for integer variables and "a:<canonical app>" for purified
// uninterpreted-function applications.
type lin struct {
	coefs map[string]*big.Rat
	k     *big.Rat
}

func newLin() *lin {
	return &lin{coefs: map[string]*big.Rat{}, k: new(big.Rat)}
}

func linConst(v int64) *lin {
	l := newLin()
	l.k.SetInt64(v)
	return l
}

func linVar(key string) *lin {
	l := newLin()
	l.coefs[key] = big.NewRat(1, 1)
	return l
}

func (l *lin) clone() *lin {
	c := newLin()
	c.k.Set(l.k)
	for k, v := range l.coefs {
		c.coefs[k] = new(big.Rat).Set(v)
	}
	return c
}

// addScaled adds s*other into l in place.
func (l *lin) addScaled(other *lin, s *big.Rat) {
	l.k.Add(l.k, new(big.Rat).Mul(other.k, s))
	for k, v := range other.coefs {
		cur, ok := l.coefs[k]
		if !ok {
			cur = new(big.Rat)
			l.coefs[k] = cur
		}
		cur.Add(cur, new(big.Rat).Mul(v, s))
		if cur.Sign() == 0 {
			delete(l.coefs, k)
		}
	}
}

func (l *lin) scale(s *big.Rat) {
	l.k.Mul(l.k, s)
	for k, v := range l.coefs {
		v.Mul(v, s)
		if v.Sign() == 0 {
			delete(l.coefs, k)
		}
	}
}

func (l *lin) isConst() bool { return len(l.coefs) == 0 }

// canon returns a deterministic string for l, used both as an atom key
// and as the canonical form of App arguments.
func (l *lin) canon() string {
	var sb strings.Builder
	for _, k := range sortedKeys(l.coefs) {
		fmt.Fprintf(&sb, "%s*%s+", l.coefs[k].RatString(), k)
	}
	sb.WriteString(l.k.RatString())
	return sb.String()
}

// normalizeSign scales l so its leading (first sorted) coefficient is
// positive; valid only for equalities (both sides of =0 are symmetric).
func (l *lin) normalizeSign() {
	ks := sortedKeys(l.coefs)
	var lead *big.Rat
	if len(ks) > 0 {
		lead = l.coefs[ks[0]]
	} else {
		lead = l.k
	}
	if lead.Sign() < 0 {
		l.scale(big.NewRat(-1, 1))
	}
}

// linearize converts a Term into a linear combination, purifying App
// subterms into fresh canonical variables.
func linearize(t Term) (*lin, error) {
	switch t := t.(type) {
	case IntConst:
		return linConst(t.Val), nil
	case IntVar:
		return linVar("v:" + t.Name), nil
	case Add:
		x, err := linearize(t.X)
		if err != nil {
			return nil, err
		}
		y, err := linearize(t.Y)
		if err != nil {
			return nil, err
		}
		x.addScaled(y, big.NewRat(1, 1))
		return x, nil
	case Neg:
		x, err := linearize(t.X)
		if err != nil {
			return nil, err
		}
		x.scale(big.NewRat(-1, 1))
		return x, nil
	case Mul:
		x, err := linearize(t.X)
		if err != nil {
			return nil, err
		}
		x.scale(big.NewRat(t.K, 1))
		return x, nil
	case App:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			la, err := linearize(a)
			if err != nil {
				return nil, err
			}
			parts[i] = la.canon()
		}
		return linVar("a:" + t.Fn + "(" + strings.Join(parts, ",") + ")"), nil
	case nil:
		return nil, fmt.Errorf("solver: nil term")
	default:
		return nil, fmt.Errorf("solver: unknown term %T", t)
	}
}

// linSub computes lin(x) - lin(y).
func linSub(x, y Term) (*lin, error) {
	lx, err := linearize(x)
	if err != nil {
		return nil, err
	}
	ly, err := linearize(y)
	if err != nil {
		return nil, err
	}
	lx.addScaled(ly, big.NewRat(-1, 1))
	return lx, nil
}

// ineq is l <= 0, or l < 0 when strict.
type ineq struct {
	l      *lin
	strict bool
}

// theoryConj decides the satisfiability (over the rationals) of a
// conjunction of equalities (each lin = 0), inequalities, and
// disequalities (each lin != 0).
func theoryConj(eqs []*lin, ineqs []ineq, diseqs []*lin) bool {
	// Case-split disequalities: l != 0 becomes l < 0 or -l < 0.
	if len(diseqs) > 0 {
		d, rest := diseqs[0], diseqs[1:]
		lt := append(append([]ineq{}, ineqs...), ineq{d.clone(), true})
		if theoryConj(eqs, lt, rest) {
			return true
		}
		neg := d.clone()
		neg.scale(big.NewRat(-1, 1))
		gt := append(append([]ineq{}, ineqs...), ineq{neg, true})
		return theoryConj(eqs, gt, rest)
	}

	// Copy so elimination does not alias the caller's slices.
	eqs2 := make([]*lin, len(eqs))
	for i, e := range eqs {
		eqs2[i] = e.clone()
	}
	ins := make([]ineq, len(ineqs))
	for i, in := range ineqs {
		ins[i] = ineq{in.l.clone(), in.strict}
	}

	// Gaussian elimination of equalities.
	for len(eqs2) > 0 {
		e := eqs2[0]
		eqs2 = eqs2[1:]
		if e.isConst() {
			if e.k.Sign() != 0 {
				return false
			}
			continue
		}
		ks := sortedKeys(e.coefs)
		v := ks[0]
		c := e.coefs[v]
		// v = -(e - c*v)/c ; substitute: for every other constraint f
		// with coefficient d on v, f := f - (d/c)*e.
		for _, f := range eqs2 {
			if d, ok := f.coefs[v]; ok {
				s := new(big.Rat).Quo(d, c)
				s.Neg(s)
				f.addScaled(e, s)
			}
		}
		for i := range ins {
			if d, ok := ins[i].l.coefs[v]; ok {
				s := new(big.Rat).Quo(d, c)
				s.Neg(s)
				ins[i].l.addScaled(e, s)
			}
		}
	}

	// Fourier–Motzkin elimination of inequalities.
	for {
		// Find a variable still present.
		var v string
		found := false
		for _, in := range ins {
			if len(in.l.coefs) > 0 {
				v = sortedKeys(in.l.coefs)[0]
				found = true
				break
			}
		}
		if !found {
			break
		}
		var lowers, uppers []ineq // lowers: coef<0 (v >= bound); uppers: coef>0
		var rest []ineq
		for _, in := range ins {
			c, ok := in.l.coefs[v]
			switch {
			case !ok:
				rest = append(rest, in)
			case c.Sign() > 0:
				uppers = append(uppers, in)
			default:
				lowers = append(lowers, in)
			}
		}
		for _, lo := range lowers {
			for _, up := range uppers {
				cl := lo.l.coefs[v] // negative
				cu := up.l.coefs[v] // positive
				// Combine: cu*lo + (-cl)*up eliminates v.
				comb := lo.l.clone()
				comb.scale(cu)
				scaledUp := up.l.clone()
				negCl := new(big.Rat).Neg(cl)
				scaledUp.scale(negCl)
				comb.addScaled(scaledUp, big.NewRat(1, 1))
				delete(comb.coefs, v) // numeric residue, if any, is zero
				rest = append(rest, ineq{comb, lo.strict || up.strict})
			}
		}
		ins = rest
	}

	for _, in := range ins {
		if !in.l.isConst() {
			continue
		}
		s := in.l.k.Sign()
		if s > 0 || (s == 0 && in.strict) {
			return false
		}
	}
	return true
}
