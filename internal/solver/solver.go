package solver

import (
	"errors"
	"fmt"
	"math/big"
)

func ratNegOne() *big.Rat { return big.NewRat(-1, 1) }

// Stats counts solver work; benchmarks read these to compare the
// fork-vs-defer tradeoff from Section 3.1 of the paper.
type Stats struct {
	SatQueries   int // top-level Sat/Valid calls
	TheoryChecks int // conjunction checks handed to the arithmetic core
	Decisions    int // DPLL branch decisions
	Atoms        int // decision atoms across all queries
}

// Solver decides satisfiability and validity. The zero value is not
// ready; use New.
type Solver struct {
	// MaxAtoms bounds the number of decision atoms per query; queries
	// above the bound return an error rather than running away.
	MaxAtoms int
	// MaxDecisions bounds total DPLL decisions per query.
	MaxDecisions int
	Stats        Stats
}

// New returns a Solver with default resource bounds.
func New() *Solver {
	return &Solver{MaxAtoms: 256, MaxDecisions: 1 << 20}
}

// ErrLimit is the sentinel wrapped by every resource-exhaustion error
// (MaxAtoms, MaxDecisions). Clients that must distinguish "the query
// is too big for the configured bounds" (answer: unknown) from a
// genuine failure test errors.Is(err, ErrLimit); the engine classifies
// such queries as "unknown → keep path".
var ErrLimit = errors.New("solver: resource limit exceeded")

// ErrResource is returned when a query exceeds the solver's bounds. It
// wraps ErrLimit.
type ErrResource struct{ Msg string }

func (e ErrResource) Error() string { return "solver: " + e.Msg }

// Unwrap makes errors.Is(err, ErrLimit) hold for resource errors.
func (e ErrResource) Unwrap() error { return ErrLimit }

// Sat reports whether f is satisfiable (over the rationals for the
// arithmetic part; see the package comment for the conservativity
// argument).
func (s *Solver) Sat(f Formula) (bool, error) {
	s.Stats.SatQueries++
	table := newAtomTable()
	n, err := toNNF(f, true, table)
	if err != nil {
		return false, err
	}
	if len(table.byKey) > s.MaxAtoms {
		return false, ErrResource{fmt.Sprintf("query has %d atoms (max %d)", len(table.byKey), s.MaxAtoms)}
	}
	s.Stats.Atoms += len(table.byKey)
	c := &searchCtx{solver: s, assign: map[*atom]bool{}, budget: s.MaxDecisions}
	ok, err := c.search(n)
	if err != nil {
		return false, err
	}
	return ok, nil
}

// Valid reports whether f holds under every valuation.
func (s *Solver) Valid(f Formula) (bool, error) {
	sat, err := s.Sat(NewNot(f))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// Tautology reports whether the disjunction of gs is valid. This is
// the exhaustive(g1, ..., gn) check of the TSYMBLOCK mix rule.
func (s *Solver) Tautology(gs ...Formula) (bool, error) {
	return s.Valid(Disj(gs...))
}

// searchCtx is the state of one DPLL search.
type searchCtx struct {
	solver *Solver
	assign map[*atom]bool
	budget int
}

// evalNode evaluates n under the partial assignment; unknown is
// reported via ok=false together with the first unassigned atom seen.
func (c *searchCtx) evalNode(n node) (val bool, ok bool, pick *atom) {
	switch n := n.(type) {
	case nConst:
		return n.val, true, nil
	case nLit:
		if v, assigned := c.assign[n.a]; assigned {
			return v == n.pos, true, nil
		}
		return false, false, n.a
	case nAnd:
		xv, xok, xp := c.evalNode(n.x)
		if xok && !xv {
			return false, true, nil
		}
		yv, yok, yp := c.evalNode(n.y)
		if yok && !yv {
			return false, true, nil
		}
		if xok && yok {
			return true, true, nil
		}
		if xp != nil {
			return false, false, xp
		}
		return false, false, yp
	case nOr:
		xv, xok, xp := c.evalNode(n.x)
		if xok && xv {
			return true, true, nil
		}
		yv, yok, yp := c.evalNode(n.y)
		if yok && yv {
			return true, true, nil
		}
		if xok && yok {
			return false, true, nil
		}
		if xp != nil {
			return false, false, xp
		}
		return false, false, yp
	}
	panic("solver: unreachable node kind")
}

// search runs DPLL with eager theory pruning.
func (c *searchCtx) search(n node) (bool, error) {
	val, ok, pick := c.evalNode(n)
	if ok {
		if !val {
			return false, nil
		}
		return c.theoryOK(), nil
	}
	if c.budget <= 0 {
		return false, ErrResource{"decision budget exhausted"}
	}
	c.budget--
	c.solver.Stats.Decisions++
	for _, v := range [2]bool{true, false} {
		c.assign[pick] = v
		if pick.kind == atomBool || c.theoryOK() {
			sat, err := c.search(n)
			if err != nil {
				return false, err
			}
			if sat {
				delete(c.assign, pick)
				return true, nil
			}
		}
	}
	delete(c.assign, pick)
	return false, nil
}

// theoryOK checks the arithmetic consistency of the current literal
// set.
func (c *searchCtx) theoryOK() bool {
	c.solver.Stats.TheoryChecks++
	var eqs []*lin
	var ineqs []ineq
	var diseqs []*lin
	for a, v := range c.assign {
		switch a.kind {
		case atomBool:
			// Boolean atoms are theory-free.
		case atomEq:
			if v {
				eqs = append(eqs, a.l)
			} else {
				diseqs = append(diseqs, a.l)
			}
		case atomLe:
			if v {
				ineqs = append(ineqs, ineq{a.l, false})
			} else {
				neg := a.l.clone()
				neg.scale(ratNegOne())
				ineqs = append(ineqs, ineq{neg, true})
			}
		case atomLt:
			if v {
				ineqs = append(ineqs, ineq{a.l, true})
			} else {
				neg := a.l.clone()
				neg.scale(ratNegOne())
				ineqs = append(ineqs, ineq{neg, false})
			}
		}
	}
	return theoryConj(eqs, ineqs, diseqs)
}
