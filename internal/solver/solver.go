package solver

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"mix/internal/fault"
)

func ratNegOne() *big.Rat { return big.NewRat(-1, 1) }

// Stats counts solver work; benchmarks read these to compare the
// fork-vs-defer tradeoff from Section 3.1 of the paper.
type Stats struct {
	SatQueries   int // top-level Sat/Valid/SatAssuming calls
	TheoryChecks int // conjunction checks handed to the arithmetic core
	Decisions    int // branch decisions (DPLL and CDCL)
	Atoms        int // decision atoms across all queries

	// CDCL-only counters.
	Conflicts        int // conflicts hit (boolean and theory)
	TheoryConflicts  int // conflicts contributed by the arithmetic core
	Propagations     int // literals propagated by the watch lists
	LearnedClauses   int // clauses learned by 1-UIP analysis
	ForgottenClauses int // learned clauses dropped by database reduction
	Restarts         int // Luby restarts
}

// Solver decides satisfiability and validity. The zero value is not
// ready; use New.
type Solver struct {
	// Algo selects the search core: CDCL (the zero value), the legacy
	// DPLL kept as a differential oracle, or a portfolio racing both.
	Algo Algo
	// MaxAtoms bounds the number of decision atoms per query; queries
	// above the bound return an error rather than running away.
	MaxAtoms int
	// MaxDecisions bounds branch decisions per query.
	MaxDecisions int
	// MaxLearned bounds the CDCL learned-clause database; past the
	// bound, low-activity clauses are forgotten. 0 means the built-in
	// default.
	MaxLearned int
	// Ctx, when non-nil, is polled at query entry and about every 32
	// decisions or conflicts; expiry or cancellation aborts the query
	// with a classified fault wrapping ctx.Err(), so a deadline cuts
	// even a single runaway query short.
	Ctx context.Context
	// Injector, when non-nil, is visited at the fault.MidDPLL point on
	// the same cadence as the ctx poll (chaos tests only).
	Injector *fault.Injector
	// Gen is an opaque generation tag for pool owners: the engine
	// compares it against its cache's flush epoch and calls Reset when
	// they diverge, so pooled solvers never outlive the memoization
	// generation their learned clauses were earned under.
	Gen uint64
	Stats Stats

	d     *cdcl     // persistent CDCL state, created on first use
	stack []Formula // assumption stack (Push/Pop)
}

// New returns a Solver with default resource bounds.
func New() *Solver {
	return &Solver{MaxAtoms: 256, MaxDecisions: 1 << 20}
}

// ErrLimit is the sentinel wrapped by every resource-exhaustion error
// (MaxAtoms, MaxDecisions). Clients that must distinguish "the query
// is too big for the configured bounds" (answer: unknown) from a
// genuine failure test errors.Is(err, ErrLimit); the engine classifies
// such queries as "unknown → keep path".
var ErrLimit = errors.New("solver: resource limit exceeded")

// ErrResource is returned when a query exceeds the solver's bounds. It
// wraps ErrLimit.
type ErrResource struct{ Msg string }

func (e ErrResource) Error() string { return "solver: " + e.Msg }

// Unwrap makes errors.Is(err, ErrLimit) hold for resource errors.
func (e ErrResource) Unwrap() error { return ErrLimit }

// FaultClass classifies resource exhaustion as a solver-limit fault
// (fault.Classifier), so the degradation rule — unknown → keep path —
// applies uniformly without string matching.
func (e ErrResource) FaultClass() fault.Class { return fault.SolverLimit }

// Sat reports whether f is satisfiable (over the rationals for the
// arithmetic part; see the package comment for the conservativity
// argument). Formulas are canonicalized by Simplify first, so
// trivially true/false guards never reach the DPLL search.
func (s *Solver) Sat(f Formula) (bool, error) {
	ok, _, err := s.sat(f, false)
	return ok, err
}

// SatModel is Sat plus a satisfying assignment when the answer is
// "sat". The model may be nil even on sat (extraction is best-effort);
// callers must verify a model against any new query with Model.Eval
// before trusting it, which is what the engine's counterexample cache
// does.
func (s *Solver) SatModel(f Formula) (bool, *Model, error) {
	return s.sat(f, true)
}

// ctxErr reports a classified fault if the solver's context is done.
func (s *Solver) ctxErr(op string) error {
	if s.Ctx == nil {
		return nil
	}
	select {
	case <-s.Ctx.Done():
		return fault.FromContext(op, "", s.Ctx.Err())
	default:
		return nil
	}
}

// poll is the cooperative interruption point of both search loops: it
// checks the context and visits the mid-search injection site (named
// MidDPLL for historical reasons; the CDCL core polls it too).
func (s *Solver) poll() error {
	if err := s.ctxErr("solver.dpll"); err != nil {
		return err
	}
	return s.Injector.At(fault.MidDPLL)
}

// sat answers one query through the dispatch in assume.go, so plain
// Sat/SatModel calls see the assumption stack and the configured
// search core exactly like SatAssuming does.
func (s *Solver) sat(f Formula, wantModel bool) (bool, *Model, error) {
	return s.satAssuming(wantModel, []Formula{f})
}

// satDPLL is the legacy chronological search, kept verbatim as the
// differential oracle for the CDCL core (-solver=dpll).
func (s *Solver) satDPLL(f Formula, wantModel bool) (bool, *Model, error) {
	f = Simplify(f)
	// Lower guarded (Ite) terms to fresh variables with defining
	// clauses; after this point the formula is in the core language.
	f = elimIte(f)
	table := newAtomTable()
	n, err := toNNF(f, true, table)
	if err != nil {
		return false, nil, err
	}
	if len(table.byKey) > s.MaxAtoms {
		return false, nil, ErrResource{fmt.Sprintf("query has %d atoms (max %d)", len(table.byKey), s.MaxAtoms)}
	}
	s.Stats.Atoms += len(table.byKey)
	c := &searchCtx{solver: s, assign: map[*atom]bool{}, budget: s.MaxDecisions, wantModel: wantModel}
	ok, err := c.search(n)
	if err != nil {
		return false, nil, err
	}
	return ok, c.model, nil
}

// Valid reports whether f holds under every valuation.
func (s *Solver) Valid(f Formula) (bool, error) {
	sat, err := s.Sat(NewNot(f))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// Tautology reports whether the disjunction of gs is valid. This is
// the exhaustive(g1, ..., gn) check of the TSYMBLOCK mix rule.
func (s *Solver) Tautology(gs ...Formula) (bool, error) {
	return s.Valid(Disj(gs...))
}

// searchCtx is the state of one DPLL search. order mirrors assign as a
// stack in decision order: iterating it instead of the map keeps model
// extraction and theory-check construction deterministic across runs.
type searchCtx struct {
	solver    *Solver
	assign    map[*atom]bool
	order     []*atom
	budget    int
	wantModel bool
	model     *Model
}

// search runs DPLL with eager theory pruning. Each decision
// *conditions* the formula — rewrites the tree with the decided atom
// replaced by a constant, sharing untouched subtrees — so the work per
// decision is proportional to the residual formula, not to a full
// re-evaluation of the original tree at every node of the search.
func (c *searchCtx) search(n node) (bool, error) {
	if cn, ok := n.(nConst); ok {
		if !cn.val {
			return false, nil
		}
		if !c.theoryOK() {
			return false, nil
		}
		if c.wantModel {
			c.capture()
		}
		return true, nil
	}
	if c.budget <= 0 {
		return false, ErrResource{"decision budget exhausted"}
	}
	c.budget--
	c.solver.Stats.Decisions++
	if c.solver.Stats.Decisions&31 == 0 {
		if err := c.solver.poll(); err != nil {
			return false, err
		}
	}
	pick := firstLit(n)
	c.order = append(c.order, pick)
	for _, v := range [2]bool{true, false} {
		c.assign[pick] = v
		if pick.kind == atomBool || c.theoryOK() {
			cond, _ := condition(n, pick, v)
			sat, err := c.search(cond)
			if err != nil {
				return false, err
			}
			if sat {
				c.order = c.order[:len(c.order)-1]
				delete(c.assign, pick)
				return true, nil
			}
		}
	}
	c.order = c.order[:len(c.order)-1]
	delete(c.assign, pick)
	return false, nil
}

// firstLit returns the leftmost literal's atom; n must not be a bare
// constant (conditioning folds constants away, so any interior node
// still contains a literal).
func firstLit(n node) *atom {
	switch n := n.(type) {
	case nLit:
		return n.a
	case nAnd:
		if a := firstLit(n.x); a != nil {
			return a
		}
		return firstLit(n.y)
	case nOr:
		if a := firstLit(n.x); a != nil {
			return a
		}
		return firstLit(n.y)
	}
	return nil
}

// condition substitutes v for atom a throughout n, folding constants
// upward; unchanged subtrees are returned as-is (shared, not copied).
func condition(n node, a *atom, v bool) (node, bool) {
	switch t := n.(type) {
	case nLit:
		if t.a == a {
			return nConst{t.pos == v}, true
		}
		return n, false
	case nAnd:
		x, cx := condition(t.x, a, v)
		y, cy := condition(t.y, a, v)
		if !cx && !cy {
			return n, false
		}
		return mkAnd(x, y), true
	case nOr:
		x, cx := condition(t.x, a, v)
		y, cy := condition(t.y, a, v)
		if !cx && !cy {
			return n, false
		}
		return mkOr(x, y), true
	}
	return n, false
}

// capture extracts a model from the current (theory-consistent, NNF-
// monotone-complete) assignment, walking the decision stack in order
// so the witness is the same on every run. Extraction is best-effort:
// on any numeric corner the model is dropped and the sat verdict
// stands.
func (c *searchCtx) capture() {
	m := &Model{Ints: map[string]*big.Rat{}, Bools: map[string]bool{}}
	var ls theoryLits
	for _, a := range c.order {
		v := c.assign[a]
		if a.kind == atomBool {
			m.Bools[a.name] = v
		} else {
			ls.add(a, v)
		}
	}
	ints, ok := ls.model()
	if !ok {
		c.model = nil
		return
	}
	m.Ints = ints
	c.model = m
}

// theoryOK checks the arithmetic consistency of the current literal
// set, built in decision order via the shared classifier in theory.go.
func (c *searchCtx) theoryOK() bool {
	c.solver.Stats.TheoryChecks++
	var ls theoryLits
	for _, a := range c.order {
		ls.add(a, c.assign[a])
	}
	return ls.consistent()
}
