package solver

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteEnv is an assignment of small integers to integer variables and
// truth values to boolean variables, used by the brute-force reference
// evaluator.
type bruteEnv struct {
	ints  map[string]int64
	bools map[string]bool
}

func bruteEvalTerm(t Term, env bruteEnv) int64 {
	switch t := t.(type) {
	case IntConst:
		return t.Val
	case IntVar:
		return env.ints[t.Name]
	case Add:
		return bruteEvalTerm(t.X, env) + bruteEvalTerm(t.Y, env)
	case Neg:
		return -bruteEvalTerm(t.X, env)
	case Mul:
		return t.K * bruteEvalTerm(t.X, env)
	}
	panic("brute: unsupported term")
}

func bruteEvalFormula(f Formula, env bruteEnv) bool {
	switch f := f.(type) {
	case BoolConst:
		return f.Val
	case BoolVar:
		return env.bools[f.Name]
	case Not:
		return !bruteEvalFormula(f.X, env)
	case And:
		return bruteEvalFormula(f.X, env) && bruteEvalFormula(f.Y, env)
	case Or:
		return bruteEvalFormula(f.X, env) || bruteEvalFormula(f.Y, env)
	case Iff:
		return bruteEvalFormula(f.X, env) == bruteEvalFormula(f.Y, env)
	case Eq:
		return bruteEvalTerm(f.X, env) == bruteEvalTerm(f.Y, env)
	case Le:
		return bruteEvalTerm(f.X, env) <= bruteEvalTerm(f.Y, env)
	case Lt:
		return bruteEvalTerm(f.X, env) < bruteEvalTerm(f.Y, env)
	}
	panic("brute: unsupported formula")
}

// bruteSat searches assignments of {-3..3} to x,y and {t,f} to p,q.
func bruteSat(f Formula) bool {
	for xi := int64(-3); xi <= 3; xi++ {
		for yi := int64(-3); yi <= 3; yi++ {
			for _, pv := range [2]bool{false, true} {
				for _, qv := range [2]bool{false, true} {
					env := bruteEnv{
						ints:  map[string]int64{"x": xi, "y": yi},
						bools: map[string]bool{"p": pv, "q": qv},
					}
					if bruteEvalFormula(f, env) {
						return true
					}
				}
			}
		}
	}
	return false
}

// genFormula builds a random formula over x, y, p, q with small
// constants.
func genFormula(r *rand.Rand, depth int) Formula {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return BoolVar{[]string{"p", "q"}[r.Intn(2)]}
		case 1:
			return Eq{genTerm(r), genTerm(r)}
		case 2:
			return Le{genTerm(r), genTerm(r)}
		case 3:
			return Lt{genTerm(r), genTerm(r)}
		default:
			return BoolConst{r.Intn(2) == 0}
		}
	}
	switch r.Intn(4) {
	case 0:
		return And{genFormula(r, depth-1), genFormula(r, depth-1)}
	case 1:
		return Or{genFormula(r, depth-1), genFormula(r, depth-1)}
	case 2:
		return Not{genFormula(r, depth-1)}
	default:
		return Iff{genFormula(r, depth-1), genFormula(r, depth-1)}
	}
}

func genTerm(r *rand.Rand) Term {
	switch r.Intn(4) {
	case 0:
		return IntVar{[]string{"x", "y"}[r.Intn(2)]}
	case 1:
		return IntConst{int64(r.Intn(5) - 2)}
	case 2:
		return Add{genTerm(r), genTerm(r)}
	default:
		return Mul{int64(r.Intn(3) + 1), IntVar{[]string{"x", "y"}[r.Intn(2)]}}
	}
}

// TestQuickBruteImpliesSat: any formula with a model in the small
// domain must be reported satisfiable (the solver's "unsat" answers
// must never be wrong — this is the soundness direction every client
// relies on).
func TestQuickBruteImpliesSat(t *testing.T) {
	r := rand.New(rand.NewSource(20100605)) // PLDI 2010 conference date
	property := func() bool {
		f := genFormula(r, 3)
		if !bruteSat(f) {
			return true // no small model; no claim either way
		}
		sat, err := New().Sat(f)
		if err != nil {
			t.Logf("resource error on %s: %v", f, err)
			return true
		}
		if !sat {
			t.Logf("counterexample: %s has a small model but solver says unsat", f)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValidImpliesBruteTrue: if the solver claims validity, the
// formula must hold at every point of the small domain.
func TestQuickValidImpliesBruteTrue(t *testing.T) {
	r := rand.New(rand.NewSource(1976)) // King 1976
	property := func() bool {
		f := genFormula(r, 3)
		valid, err := New().Valid(f)
		if err != nil || !valid {
			return true
		}
		return !bruteSat(NewNot(f))
	}
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNegationConsistency: f and !f cannot both be unsatisfiable.
func TestQuickNegationConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	property := func() bool {
		f := genFormula(r, 3)
		s := New()
		satF, err1 := s.Sat(f)
		satNotF, err2 := s.Sat(NewNot(f))
		if err1 != nil || err2 != nil {
			return true
		}
		return satF || satNotF
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
