package solver

import (
	"fmt"
	"math/big"
)

// Model is a satisfying assignment: rational values for the canonical
// linear-form keys ("v:<name>" integer variables, "a:<app>" purified
// applications) and truth values for boolean variables. Variables
// absent from the model default to 0 / false; by construction of the
// NNF search that extension still satisfies the formula the model was
// extracted from.
type Model struct {
	Ints  map[string]*big.Rat
	Bools map[string]bool
}

// Eval evaluates f under the model (missing variables default to
// 0/false). This is what makes counterexample caching sound: a cached
// model is only trusted for a new query after Eval confirms it
// satisfies that query.
func (m *Model) Eval(f Formula) (bool, error) {
	switch f := f.(type) {
	case BoolConst:
		return f.Val, nil
	case BoolVar:
		return m.Bools[f.Name], nil
	case Not:
		v, err := m.Eval(f.X)
		return !v, err
	case And:
		x, err := m.Eval(f.X)
		if err != nil {
			return false, err
		}
		if !x {
			return false, nil
		}
		return m.Eval(f.Y)
	case Or:
		x, err := m.Eval(f.X)
		if err != nil {
			return false, err
		}
		if x {
			return true, nil
		}
		return m.Eval(f.Y)
	case Iff:
		x, err := m.Eval(f.X)
		if err != nil {
			return false, err
		}
		y, err := m.Eval(f.Y)
		return x == y, err
	case Eq:
		s, err := m.cmpSign(f.X, f.Y)
		return s == 0, err
	case Le:
		s, err := m.cmpSign(f.X, f.Y)
		return s <= 0, err
	case Lt:
		s, err := m.cmpSign(f.X, f.Y)
		return s < 0, err
	case nil:
		return false, fmt.Errorf("solver: nil formula")
	}
	return false, fmt.Errorf("solver: unknown formula %T", f)
}

// cmpSign returns sign(x - y) under the model. Guarded (Ite) terms are
// resolved first by evaluating their guards — the model decides which
// arm each ite denotes — so cached counterexamples stay usable against
// merged-state queries.
func (m *Model) cmpSign(x, y Term) (int, error) {
	var err error
	if termHasIte(x) {
		if x, err = m.resolveTerm(x); err != nil {
			return 0, err
		}
	}
	if termHasIte(y) {
		if y, err = m.resolveTerm(y); err != nil {
			return 0, err
		}
	}
	l, err := linSub(x, y)
	if err != nil {
		return 0, err
	}
	return m.evalLin(l).Sign(), nil
}

// resolveTerm rewrites t with every Ite replaced by the arm its guard
// selects under the model.
func (m *Model) resolveTerm(t Term) (Term, error) {
	switch t := t.(type) {
	case Add:
		x, err := m.resolveTerm(t.X)
		if err != nil {
			return nil, err
		}
		y, err := m.resolveTerm(t.Y)
		if err != nil {
			return nil, err
		}
		return Add{x, y}, nil
	case Neg:
		x, err := m.resolveTerm(t.X)
		if err != nil {
			return nil, err
		}
		return Neg{x}, nil
	case Mul:
		x, err := m.resolveTerm(t.X)
		if err != nil {
			return nil, err
		}
		return Mul{K: t.K, X: x}, nil
	case App:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			r, err := m.resolveTerm(a)
			if err != nil {
				return nil, err
			}
			args[i] = r
		}
		return App{Fn: t.Fn, Args: args}, nil
	case Ite:
		g, err := m.Eval(t.G)
		if err != nil {
			return nil, err
		}
		if g {
			return m.resolveTerm(t.X)
		}
		return m.resolveTerm(t.Y)
	}
	return t, nil
}

func (m *Model) evalLin(l *lin) *big.Rat {
	v := new(big.Rat).Set(l.k)
	for key, c := range l.coefs {
		if mv, ok := m.Ints[key]; ok {
			v.Add(v, new(big.Rat).Mul(c, mv))
		}
	}
	return v
}

// gaussStep records one Gaussian pivot: e still contains c*v; after
// every later variable is valued, v = -(e - c*v)/c.
type gaussStep struct {
	v string
	c *big.Rat
	e *lin
}

// fmStep records one Fourier–Motzkin elimination: the lower and upper
// bound rows for v, each still containing v (and possibly variables
// eliminated in later steps, which back-substitution values first).
type fmStep struct {
	v              string
	lowers, uppers []ineq
}

// theoryModel mirrors theoryConj but records the elimination order so
// that, on SAT, a concrete rational witness can be rebuilt by reverse
// substitution. It returns (nil, false) when the conjunction is UNSAT.
func theoryModel(eqs []*lin, ineqs []ineq, diseqs []*lin) (map[string]*big.Rat, bool) {
	if len(diseqs) > 0 {
		d, rest := diseqs[0], diseqs[1:]
		lt := append(append([]ineq{}, ineqs...), ineq{d.clone(), true})
		if m, ok := theoryModel(eqs, lt, rest); ok {
			return m, true
		}
		neg := d.clone()
		neg.scale(big.NewRat(-1, 1))
		gt := append(append([]ineq{}, ineqs...), ineq{neg, true})
		return theoryModel(eqs, gt, rest)
	}

	eqs2 := make([]*lin, len(eqs))
	for i, e := range eqs {
		eqs2[i] = e.clone()
	}
	ins := make([]ineq, len(ineqs))
	for i, in := range ineqs {
		ins[i] = ineq{in.l.clone(), in.strict}
	}

	var gsteps []gaussStep
	for len(eqs2) > 0 {
		e := eqs2[0]
		eqs2 = eqs2[1:]
		if e.isConst() {
			if e.k.Sign() != 0 {
				return nil, false
			}
			continue
		}
		ks := sortedKeys(e.coefs)
		v := ks[0]
		c := e.coefs[v]
		gsteps = append(gsteps, gaussStep{v: v, c: c, e: e})
		for _, f := range eqs2 {
			if d, ok := f.coefs[v]; ok {
				s := new(big.Rat).Quo(d, c)
				s.Neg(s)
				f.addScaled(e, s)
			}
		}
		for i := range ins {
			if d, ok := ins[i].l.coefs[v]; ok {
				s := new(big.Rat).Quo(d, c)
				s.Neg(s)
				ins[i].l.addScaled(e, s)
			}
		}
	}

	var fsteps []fmStep
	for {
		var v string
		found := false
		for _, in := range ins {
			if len(in.l.coefs) > 0 {
				v = sortedKeys(in.l.coefs)[0]
				found = true
				break
			}
		}
		if !found {
			break
		}
		var lowers, uppers []ineq
		var rest []ineq
		for _, in := range ins {
			c, ok := in.l.coefs[v]
			switch {
			case !ok:
				rest = append(rest, in)
			case c.Sign() > 0:
				uppers = append(uppers, in)
			default:
				lowers = append(lowers, in)
			}
		}
		fsteps = append(fsteps, fmStep{v: v, lowers: lowers, uppers: uppers})
		for _, lo := range lowers {
			for _, up := range uppers {
				cl := lo.l.coefs[v]
				cu := up.l.coefs[v]
				comb := lo.l.clone()
				comb.scale(cu)
				scaledUp := up.l.clone()
				negCl := new(big.Rat).Neg(cl)
				scaledUp.scale(negCl)
				comb.addScaled(scaledUp, big.NewRat(1, 1))
				delete(comb.coefs, v)
				rest = append(rest, ineq{comb, lo.strict || up.strict})
			}
		}
		ins = rest
	}

	for _, in := range ins {
		if !in.l.isConst() {
			continue
		}
		s := in.l.k.Sign()
		if s > 0 || (s == 0 && in.strict) {
			return nil, false
		}
	}

	// Back-substitute. FM steps first, newest-first: a step's bound rows
	// may mention variables eliminated in later steps, which are then
	// already valued; anything still unvalued reads as 0.
	model := map[string]*big.Rat{}
	for i := len(fsteps) - 1; i >= 0; i-- {
		st := fsteps[i]
		v, ok := pickWithin(st, model)
		if !ok {
			return nil, false // numeric inconsistency; caller drops the model
		}
		model[st.v] = v
	}
	// Gauss pivots newest-first: each pivot equation mentions only later
	// pivots, FM variables, and free variables.
	for i := len(gsteps) - 1; i >= 0; i-- {
		st := gsteps[i]
		r := evalLinExcept(st.e, st.v, model)
		val := new(big.Rat).Neg(r)
		val.Quo(val, st.c)
		model[st.v] = val
	}
	return model, true
}

// evalLinExcept evaluates l under the partial model, skipping the v
// term; unvalued variables read as 0.
func evalLinExcept(l *lin, v string, model map[string]*big.Rat) *big.Rat {
	r := new(big.Rat).Set(l.k)
	for key, c := range l.coefs {
		if key == v {
			continue
		}
		if mv, ok := model[key]; ok {
			r.Add(r, new(big.Rat).Mul(c, mv))
		}
	}
	return r
}

// pickWithin chooses a value for st.v between its tightest lower and
// upper bounds under the partial model (rational semantics: any
// nonempty interval, open or closed, has a witness).
func pickWithin(st fmStep, model map[string]*big.Rat) (*big.Rat, bool) {
	var lo, hi *big.Rat
	var loStrict, hiStrict bool
	for _, in := range st.lowers {
		c := in.l.coefs[st.v] // negative: c*v + r <= 0  =>  v >= -r/c
		b := boundOf(in, st.v, c, model)
		if lo == nil || b.Cmp(lo) > 0 {
			lo, loStrict = b, in.strict
		} else if b.Cmp(lo) == 0 && in.strict {
			loStrict = true
		}
	}
	for _, in := range st.uppers {
		c := in.l.coefs[st.v] // positive: c*v + r <= 0  =>  v <= -r/c
		b := boundOf(in, st.v, c, model)
		if hi == nil || b.Cmp(hi) < 0 {
			hi, hiStrict = b, in.strict
		} else if b.Cmp(hi) == 0 && in.strict {
			hiStrict = true
		}
	}
	switch {
	case lo == nil && hi == nil:
		return new(big.Rat), true
	case hi == nil:
		if loStrict {
			return new(big.Rat).Add(lo, big.NewRat(1, 1)), true
		}
		return lo, true
	case lo == nil:
		if hiStrict {
			return new(big.Rat).Sub(hi, big.NewRat(1, 1)), true
		}
		return hi, true
	}
	switch lo.Cmp(hi) {
	case -1:
		mid := new(big.Rat).Add(lo, hi)
		mid.Mul(mid, big.NewRat(1, 2))
		return mid, true
	case 0:
		if loStrict || hiStrict {
			return nil, false
		}
		return lo, true
	}
	return nil, false
}

// boundOf computes -r/c for the row's residue r = eval(l - c*v).
func boundOf(in ineq, v string, c *big.Rat, model map[string]*big.Rat) *big.Rat {
	r := evalLinExcept(in.l, v, model)
	b := new(big.Rat).Neg(r)
	b.Quo(b, c)
	return b
}
