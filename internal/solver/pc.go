package solver

// PC is an incremental path condition: an immutable cons list of
// already-simplified conjuncts whose tail is shared with the parent
// path. Extending a path condition at a fork is O(size of the new
// guard) — the prefix is never copied — and both fork children alias
// the parent's list. nil is the empty (true) path condition, so the
// zero value is ready to use.
//
// Each node caches the independence-support tokens of its conjunct,
// which lets the engine slice a query into independent components
// without re-walking formulas on every solver call.
type PC struct {
	parent  *PC
	f       Formula
	support []string
	n       int
	dead    bool
}

// PCTrue is the empty path condition. (Any nil *PC behaves the same.)
var PCTrue *PC

// Len reports the number of conjuncts.
func (p *PC) Len() int {
	if p == nil {
		return 0
	}
	return p.n
}

// Dead reports whether the path condition contains a literal false —
// an infeasible path that needs no solver to reject.
func (p *PC) Dead() bool {
	if p == nil {
		return false
	}
	return p.dead
}

// And returns p ∧ f as a new path condition sharing p as its tail. The
// guard is simplified and split into top-level conjuncts, one node
// each, so downstream slicing sees the finest stable granularity.
func (p *PC) And(f Formula) *PC {
	return p.and(Simplify(f))
}

func (p *PC) and(f Formula) *PC {
	switch f := f.(type) {
	case BoolConst:
		if f.Val {
			return p
		}
		if p.Dead() {
			return p
		}
		return &PC{parent: p, f: False, n: p.Len() + 1, dead: true}
	case And:
		return p.and(f.X).and(f.Y)
	}
	if p != nil && formulaEq(p.f, f) {
		return p // re-asserted guard (e.g. a loop condition), keep the node
	}
	return &PC{parent: p, f: f, support: Support(f), n: p.Len() + 1, dead: p.Dead()}
}

// Head returns the newest conjunct and its cached support tokens.
func (p *PC) Head() (Formula, []string) { return p.f, p.support }

// Suffix returns the conjuncts added to p after base, oldest-first,
// and whether base is a prefix of p (by node identity — extension
// never copies nodes, so ancestry is pointer equality). State merging
// uses it to rebuild each arm's branch guard relative to the fork
// point.
func (p *PC) Suffix(base *PC) ([]Formula, bool) {
	var rev []Formula
	for q := p; q != base; q = q.parent {
		if q == nil {
			return nil, false
		}
		rev = append(rev, q.f)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// Parent returns the path condition without its newest conjunct.
func (p *PC) Parent() *PC { return p.parent }

// Conjuncts returns the conjuncts oldest-first.
func (p *PC) Conjuncts() []Formula {
	out := make([]Formula, p.Len())
	for q := p; q != nil; q = q.parent {
		out[q.n-1] = q.f
	}
	return out
}

// Formula folds the path condition back into a single Formula (for
// callers outside the engine's sliced pipeline).
func (p *PC) Formula() Formula {
	if p == nil {
		return True
	}
	return Conj(p.Conjuncts()...)
}

func (p *PC) String() string { return p.Formula().String() }
