package solver

import "fmt"

// atomKind distinguishes the kinds of decision atoms.
type atomKind int

const (
	atomBool atomKind = iota // a boolean variable
	atomEq                   // lin = 0
	atomLe                   // lin <= 0
	atomLt                   // lin < 0
)

// atom is a canonicalized decision atom. Arithmetic atoms carry their
// normalized linear form; boolean atoms carry the variable name.
type atom struct {
	kind atomKind
	key  string
	l    *lin
	name string
	negl *lin // cached negated form; see (*atom).negLin in theory.go
}

// node is a formula in negation normal form: negation appears only on
// literals, and the only arithmetic literal that can be negative is
// equality (a disequality); <= and < are flipped during conversion.
type node interface{ isNode() }

type nConst struct{ val bool }
type nAnd struct{ x, y node }
type nOr struct{ x, y node }
type nLit struct {
	a   *atom
	pos bool
}

func (nConst) isNode() {}
func (nAnd) isNode()   {}
func (nOr) isNode()    {}
func (nLit) isNode()   {}

// atomTable interns atoms by canonical key so that syntactically
// distinct but arithmetically identical atoms share one decision
// variable.
type atomTable struct {
	byKey map[string]*atom
}

func newAtomTable() *atomTable { return &atomTable{byKey: map[string]*atom{}} }

func (t *atomTable) intern(a *atom) *atom {
	if got, ok := t.byKey[a.key]; ok {
		return got
	}
	t.byKey[a.key] = a
	return a
}

func (t *atomTable) boolAtom(name string) *atom {
	return t.intern(&atom{kind: atomBool, key: "b:" + name, name: name})
}

// arithAtom canonicalizes lin ⋈ 0 and returns either a constant node
// (when lin is variable-free) or a literal.
func (t *atomTable) arithAtom(kind atomKind, l *lin, pos bool) node {
	if l.isConst() {
		var v bool
		switch kind {
		case atomEq:
			v = l.k.Sign() == 0
		case atomLe:
			v = l.k.Sign() <= 0
		case atomLt:
			v = l.k.Sign() < 0
		}
		return nConst{v == pos}
	}
	var prefix string
	switch kind {
	case atomEq:
		l.normalizeSign()
		prefix = "eq:"
	case atomLe:
		prefix = "le:"
	case atomLt:
		prefix = "lt:"
	}
	a := t.intern(&atom{kind: kind, key: prefix + l.canon(), l: l})
	return nLit{a, pos}
}

// toNNF converts f (under polarity pos) to negation normal form,
// interning atoms into t.
func toNNF(f Formula, pos bool, t *atomTable) (node, error) {
	switch f := f.(type) {
	case BoolConst:
		return nConst{f.Val == pos}, nil
	case BoolVar:
		return nLit{t.boolAtom(f.Name), pos}, nil
	case Not:
		return toNNF(f.X, !pos, t)
	case And:
		x, err := toNNF(f.X, pos, t)
		if err != nil {
			return nil, err
		}
		y, err := toNNF(f.Y, pos, t)
		if err != nil {
			return nil, err
		}
		if pos {
			return mkAnd(x, y), nil
		}
		return mkOr(x, y), nil
	case Or:
		x, err := toNNF(f.X, pos, t)
		if err != nil {
			return nil, err
		}
		y, err := toNNF(f.Y, pos, t)
		if err != nil {
			return nil, err
		}
		if pos {
			return mkOr(x, y), nil
		}
		return mkAnd(x, y), nil
	case Iff:
		// pos:  (x && y) || (!x && !y)
		// !pos: (x && !y) || (!x && y)
		xT, err := toNNF(f.X, true, t)
		if err != nil {
			return nil, err
		}
		xF, err := toNNF(f.X, false, t)
		if err != nil {
			return nil, err
		}
		yT, err := toNNF(f.Y, true, t)
		if err != nil {
			return nil, err
		}
		yF, err := toNNF(f.Y, false, t)
		if err != nil {
			return nil, err
		}
		if pos {
			return mkOr(mkAnd(xT, yT), mkAnd(xF, yF)), nil
		}
		return mkOr(mkAnd(xT, yF), mkAnd(xF, yT)), nil
	case Eq:
		l, err := linSub(f.X, f.Y)
		if err != nil {
			return nil, err
		}
		return t.arithAtom(atomEq, l, pos), nil
	case Le:
		l, err := linSub(f.X, f.Y) // X - Y <= 0
		if err != nil {
			return nil, err
		}
		if pos {
			return t.arithAtom(atomLe, l, true), nil
		}
		// !(X <= Y)  ==  Y < X  ==  Y - X < 0.
		l.scale(ratNegOne())
		return t.arithAtom(atomLt, l, true), nil
	case Lt:
		l, err := linSub(f.X, f.Y) // X - Y < 0
		if err != nil {
			return nil, err
		}
		if pos {
			return t.arithAtom(atomLt, l, true), nil
		}
		// !(X < Y)  ==  Y <= X.
		l.scale(ratNegOne())
		return t.arithAtom(atomLe, l, true), nil
	case nil:
		return nil, fmt.Errorf("solver: nil formula")
	default:
		return nil, fmt.Errorf("solver: unknown formula %T", f)
	}
}

func mkAnd(x, y node) node {
	if c, ok := x.(nConst); ok {
		if c.val {
			return y
		}
		return nConst{false}
	}
	if c, ok := y.(nConst); ok {
		if c.val {
			return x
		}
		return nConst{false}
	}
	return nAnd{x, y}
}

func mkOr(x, y node) node {
	if c, ok := x.(nConst); ok {
		if c.val {
			return nConst{true}
		}
		return y
	}
	if c, ok := y.(nConst); ok {
		if c.val {
			return nConst{true}
		}
		return x
	}
	return nOr{x, y}
}
