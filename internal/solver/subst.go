package solver

// Subst is a simultaneous substitution over terms and formulas. It is
// what summary instantiation uses: the explicit maps carry the
// parameter-placeholder → actual-argument bindings, and the rename
// hooks catch every variable the maps do not mention (a summary's
// internal fresh variables, which must be renamed per call site so two
// instantiations of the same summary — or an instantiation and an
// unrelated caller variable — can never collide).
//
// Replacement terms and formulas are inserted verbatim: the traversal
// does not descend into them, so the substitution is simultaneous, not
// iterated. Variables with neither a map entry nor a hook are kept.
type Subst struct {
	Ints  map[string]Term    // int variable name → replacement term
	Bools map[string]Formula // bool variable name → replacement formula

	// RenameInt/RenameBool, when non-nil, are applied to every variable
	// not covered by the maps. Callers memoize inside the closure when
	// the same unmapped variable must map to one fresh name.
	RenameInt  func(name string) Term
	RenameBool func(name string) Formula
}

// ApplyTerm applies the substitution to t, rebuilding through the
// canonicalizing constructors so folding opportunities exposed by the
// substitution (a constant guard, equal ite arms) collapse.
func (s *Subst) ApplyTerm(t Term) Term {
	switch t := t.(type) {
	case IntConst:
		return t
	case IntVar:
		if r, ok := s.Ints[t.Name]; ok {
			return r
		}
		if s.RenameInt != nil {
			return s.RenameInt(t.Name)
		}
		return t
	case Add:
		return Add{s.ApplyTerm(t.X), s.ApplyTerm(t.Y)}
	case Neg:
		return Neg{s.ApplyTerm(t.X)}
	case Mul:
		return Mul{K: t.K, X: s.ApplyTerm(t.X)}
	case App:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = s.ApplyTerm(a)
		}
		return App{Fn: t.Fn, Args: args}
	case Ite:
		return NewIte(s.ApplyFormula(t.G), s.ApplyTerm(t.X), s.ApplyTerm(t.Y))
	default:
		return t
	}
}

// ApplyFormula applies the substitution to f.
func (s *Subst) ApplyFormula(f Formula) Formula {
	switch f := f.(type) {
	case BoolConst:
		return f
	case BoolVar:
		if r, ok := s.Bools[f.Name]; ok {
			return r
		}
		if s.RenameBool != nil {
			return s.RenameBool(f.Name)
		}
		return f
	case Not:
		return NewNot(s.ApplyFormula(f.X))
	case And:
		return NewAnd(s.ApplyFormula(f.X), s.ApplyFormula(f.Y))
	case Or:
		return NewOr(s.ApplyFormula(f.X), s.ApplyFormula(f.Y))
	case Eq:
		return Eq{s.ApplyTerm(f.X), s.ApplyTerm(f.Y)}
	case Le:
		return Le{s.ApplyTerm(f.X), s.ApplyTerm(f.Y)}
	case Lt:
		return Lt{s.ApplyTerm(f.X), s.ApplyTerm(f.Y)}
	case Iff:
		return Iff{s.ApplyFormula(f.X), s.ApplyFormula(f.Y)}
	default:
		return f
	}
}
