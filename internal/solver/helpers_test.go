package solver

import "testing"

func TestHelperConstructors(t *testing.T) {
	mustValid(t, Implies(Eq{x(), c(1)}, Ge(x(), c(1))))
	mustValid(t, Implies(Gt(x(), c(0)), Ge(x(), c(0))))
	mustInvalid(t, Implies(Ge(x(), c(0)), Gt(x(), c(0))))
	mustValid(t, Eq{Sub(x(), x()), c(0)})
	mustValid(t, Eq{Sum(), c(0)})
	mustValid(t, Eq{Sum(c(1), c(2), c(3)), c(6)})
	mustValid(t, Conj())
	mustUnsat(t, Disj())
	mustValid(t, Iff{Neq(x(), y()), NewNot(Eq{x(), y()})})
}

func TestConstantFoldingHelpers(t *testing.T) {
	if NewAnd(True, BoolVar{"p"}) != (Formula)(BoolVar{"p"}) {
		t.Fatal("true && p should fold")
	}
	if NewAnd(False, BoolVar{"p"}) != False {
		t.Fatal("false && p should fold")
	}
	if NewOr(True, BoolVar{"p"}) != True {
		t.Fatal("true || p should fold")
	}
	if NewNot(NewNot(BoolVar{"p"})) != (Formula)(BoolVar{"p"}) {
		t.Fatal("double negation should fold")
	}
	if NewNot(True) != False {
		t.Fatal("!true should fold")
	}
}

func TestMaxDecisionsBound(t *testing.T) {
	s := New()
	s.MaxDecisions = 2
	// Needs more than 2 decisions to decide.
	f := Conj(
		NewOr(BoolVar{"a"}, BoolVar{"b"}),
		NewOr(BoolVar{"c"}, BoolVar{"d"}),
		NewOr(BoolVar{"e"}, BoolVar{"f"}),
		Neq(x(), c(0)),
	)
	if _, err := s.Sat(f); err == nil {
		t.Fatal("expected decision-budget error")
	}
}

func TestFormulaStrings(t *testing.T) {
	f := Iff{NewAnd(BoolVar{"p"}, Lt{x(), y()}), NewOr(Le{x(), c(1)}, Not{X: BoolVar{"q"}})}
	s := f.String()
	for _, frag := range []string{"<=>", "&&", "||", "<", "<=", "!q"} {
		if !contains(s, frag) {
			t.Fatalf("formula print %q missing %q", s, frag)
		}
	}
	terms := Sum(Neg{x()}, Mul{3, y()}, App{Fn: "f", Args: []Term{x()}})
	ts := terms.String()
	for _, frag := range []string{"-x", "3*y", "f(x)"} {
		if !contains(ts, frag) {
			t.Fatalf("term print %q missing %q", ts, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestErrResourceMessage(t *testing.T) {
	err := ErrResource{Msg: "boom"}
	if err.Error() != "solver: boom" {
		t.Fatalf("got %q", err.Error())
	}
}
