// Package cliflags is the single definition of the analysis options
// shared by the mix and mixy CLIs and by the mixd daemon's request
// decoding. cmd/mix and cmd/mixy used to re-declare the same ~10 flags
// by hand, and they had already drifted; registering from one struct
// means a new option lands on every binary — and in the serving
// request schema — at once.
//
// The Analysis struct serves both masters: Register binds its fields
// as flags (with the historical names, defaults, and usage strings),
// and its JSON tags define the body of a mixd request. MixConfig /
// CConfig convert to the facade's option structs; the facade's
// Validate methods own semantic validation, so this package only
// parses.
package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"mix"
	"mix/internal/obs"
)

// Kind selects which language-specific flags Register binds alongside
// the shared set.
type Kind int

const (
	// Core is the mix CLI: core-language flags (-symbolic, -unsound,
	// -defer, -env, -max-paths) plus the shared set.
	Core Kind = iota
	// MicroC is the mixy CLI: MIXY flags (-pure, -entry, -nocache,
	// -merge-cap) plus the shared set.
	MicroC
)

// Duration is a time.Duration that parses from both worlds: flag
// values and JSON strings use the human form ("50ms", "2s"), and JSON
// also accepts a plain number of nanoseconds.
type Duration time.Duration

// String implements flag.Value.
func (d *Duration) String() string {
	if d == nil {
		return "0s"
	}
	return time.Duration(*d).String()
}

// Set implements flag.Value.
func (d *Duration) Set(s string) error {
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the human form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "50ms" or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		return d.Set(s)
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err == nil {
		*d = Duration(ns)
		return nil
	}
	return fmt.Errorf("duration must be a string like %q or a number of nanoseconds, got %s", "50ms", b)
}

// Analysis is one analysis invocation's options: the union of the mix
// and mixy knobs. Zero value = all defaults off (note that Register
// applies the CLI defaults — Merge "joins", Entry "main", MergeCap 8 —
// which differ from the library's zero-value defaults on purpose: the
// CLIs and daemon default to the production configuration).
type Analysis struct {
	// Core-language options (mix CLI, kind "core" requests).
	Symbolic bool              `json:"symbolic,omitempty"`
	Unsound  bool              `json:"unsound,omitempty"`
	Defer    bool              `json:"defer,omitempty"`
	Env      map[string]string `json:"env,omitempty"`
	MaxPaths int               `json:"max_paths,omitempty"`

	// MicroC options (mixy CLI, kind "microc" requests).
	Pure       bool   `json:"pure,omitempty"`
	Entry      string `json:"entry,omitempty"`
	NoCache    bool   `json:"nocache,omitempty"`
	MergeCap   int    `json:"merge_cap,omitempty"`
	Summaries  bool   `json:"summaries,omitempty"`
	SummaryCap int    `json:"summary_cap,omitempty"`

	// Shared options.
	Merge         string   `json:"merge,omitempty"`
	Workers       int      `json:"workers,omitempty"`
	NoMemo        bool     `json:"no_memo,omitempty"`
	Deadline      Duration `json:"deadline,omitempty"`
	SolverTimeout Duration `json:"solver_timeout,omitempty"`
	Solver        string   `json:"solver,omitempty"`
	MaxAtoms      int      `json:"max_atoms,omitempty"`
	MaxDecisions  int      `json:"max_decisions,omitempty"`
	MaxLearned    int      `json:"max_learned,omitempty"`

	// CacheDir points the persistent caches (function summaries, solver
	// memo, counterexample models) at a directory. CLI / daemon-config
	// only: the `json:"-"` tag keeps it out of the request schema, so an
	// HTTP client can never choose server filesystem paths.
	CacheDir string `json:"-"`
}

// negBool adapts the historical positive flags (-memo=true) onto the
// struct's negative fields (NoMemo) without keeping two booleans in
// sync by hand.
type negBool struct{ p *bool }

func (n negBool) String() string {
	if n.p == nil {
		return "true"
	}
	return fmt.Sprint(!*n.p)
}

func (n negBool) Set(s string) error {
	var v bool
	if _, err := fmt.Sscanf(s, "%t", &v); err != nil {
		return err
	}
	*n.p = !v
	return nil
}

func (n negBool) IsBoolFlag() bool { return true }

// envValue parses the mix CLI's -env syntax ("b:bool,x:int", with "_"
// standing for spaces inside types, e.g. int_ref) into the Env map.
type envValue struct{ m *map[string]string }

func (e envValue) String() string {
	if e.m == nil || len(*e.m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(*e.m))
	for k := range *e.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + ":" + strings.ReplaceAll((*e.m)[k], " ", "_")
	}
	return strings.Join(parts, ",")
}

func (e envValue) Set(s string) error {
	if *e.m == nil {
		*e.m = map[string]string{}
	}
	for _, pair := range strings.Split(s, ",") {
		name, ty, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return fmt.Errorf("bad -env entry %q (want name:type)", pair)
		}
		(*e.m)[name] = strings.ReplaceAll(ty, "_", " ")
	}
	return nil
}

// Register binds the analysis flags on fs, shared set plus the kind's
// language-specific set, and applies the CLI defaults.
func (a *Analysis) Register(fs *flag.FlagSet, kind Kind) {
	// Shared flags — one declaration for every binary.
	fs.StringVar(&a.Merge, "merge", "joins", "state merging at conditional joins: off, joins, or aggressive")
	fs.IntVar(&a.Workers, "workers", 0, "parallel engine workers (0 = sequential, no engine)")
	fs.Var(negBool{&a.NoMemo}, "memo", "memoize solver queries (engine only)")
	fs.Var(&a.Deadline, "deadline", "wall-clock deadline for the whole run (0 = none)")
	fs.Var(&a.SolverTimeout, "solver-timeout", "per-query solver timeout (0 = none)")
	fs.StringVar(&a.Solver, "solver", "", "solver search core: cdcl (default), dpll, or portfolio")
	fs.IntVar(&a.MaxAtoms, "max-atoms", 0, "max decision atoms per solver query (0 = default, 256)")
	fs.IntVar(&a.MaxDecisions, "max-decisions", 0, "max branch decisions per solver query (0 = default, 2^20)")
	fs.IntVar(&a.MaxLearned, "max-learned", 0, "max learned clauses kept by the CDCL core (0 = default, 10000)")
	fs.StringVar(&a.CacheDir, "cache-dir", "", "persist caches (summaries, solver memo, models) under this directory across runs")

	switch kind {
	case Core:
		fs.BoolVar(&a.Symbolic, "symbolic", false, "treat the outermost scope as a symbolic block")
		fs.BoolVar(&a.Unsound, "unsound", false, "skip the exhaustive() check (bug-finding mode)")
		fs.BoolVar(&a.Defer, "defer", false, "use SEIF-DEFER instead of forking at conditionals")
		fs.Var(envValue{&a.Env}, "env", "free variables as name:type pairs, comma separated (types: int, bool, int ref, bool ref)")
		fs.IntVar(&a.MaxPaths, "max-paths", 0, "engine path budget (0 = unlimited)")
	case MicroC:
		fs.BoolVar(&a.Pure, "pure", false, "ignore MIX annotations (pure qualifier inference)")
		fs.StringVar(&a.Entry, "entry", "main", "entry function")
		fs.BoolVar(&a.NoCache, "nocache", false, "disable block caching")
		fs.IntVar(&a.MergeCap, "merge-cap", 8, "max diverging cells per joins-mode merge")
		fs.BoolVar(&a.Summaries, "summaries", false, "answer eligible calls from compositional function summaries")
		fs.IntVar(&a.SummaryCap, "summary-cap", 0, "max arms per function summary (0 = default, 16)")
	}
}

// MixConfig converts to the core-language facade config. The
// MicroC-only fields are ignored, so one Analysis decoded from a
// request can serve either kind.
func (a Analysis) MixConfig() mix.Config {
	cfg := mix.Config{
		Unsound:           a.Unsound,
		DeferConditionals: a.Defer,
		Merge:             a.Merge,
		Env:               a.Env,
		Workers:           a.Workers,
		MaxPaths:          a.MaxPaths,
		NoMemo:            a.NoMemo,
		Deadline:          time.Duration(a.Deadline),
		SolverTimeout:     time.Duration(a.SolverTimeout),
		Solver:            a.Solver,
		MaxAtoms:          a.MaxAtoms,
		MaxDecisions:      a.MaxDecisions,
		MaxLearned:        a.MaxLearned,
		CacheDir:          a.CacheDir,
	}
	if a.Symbolic {
		cfg.Mode = mix.StartSymbolic
	}
	return cfg
}

// CConfig converts to the MicroC facade config; core-only fields are
// ignored.
func (a Analysis) CConfig() mix.CConfig {
	return mix.CConfig{
		Entry:         a.Entry,
		PureTypes:     a.Pure,
		NoCache:       a.NoCache,
		Merge:         a.Merge,
		MergeCap:      a.MergeCap,
		Summaries:     a.Summaries,
		SummaryCap:    a.SummaryCap,
		Workers:       a.Workers,
		NoMemo:        a.NoMemo,
		Deadline:      time.Duration(a.Deadline),
		SolverTimeout: time.Duration(a.SolverTimeout),
		Solver:        a.Solver,
		MaxAtoms:      a.MaxAtoms,
		MaxDecisions:  a.MaxDecisions,
		MaxLearned:    a.MaxLearned,
		CacheDir:      a.CacheDir,
	}
}

// Sharding carries the distributed-exploration flags shared by mix,
// mixy, mixshard, and mixd (internal/shard; DESIGN.md section 15).
// Like CacheDir, these are CLI / daemon-config only and deliberately
// absent from the request schema: an HTTP client must not be able to
// make the server spawn processes.
type Sharding struct {
	Shards      int
	Depth       int
	Attempts    int
	Heartbeat   Duration
	ItemTimeout Duration
	Seed        int64
}

// Register binds the sharding flags on fs.
func (s *Sharding) Register(fs *flag.FlagSet) {
	fs.IntVar(&s.Shards, "shards", 0, "distribute exploration across n worker processes (0 = in-process)")
	fs.IntVar(&s.Depth, "shard-depth", 0, "fork-prefix depth: the analysis splits into 2^depth work items (0 = default, 2)")
	fs.IntVar(&s.Attempts, "shard-attempts", 0, "dispatch attempts per work item before its subtree is declared lost (0 = default, 3)")
	fs.Var(&s.Heartbeat, "shard-heartbeat", "worker heartbeat period (0 = default, 100ms)")
	fs.Var(&s.ItemTimeout, "shard-timeout", "max worker silence before a shard is declared lost (0 = default, 10x heartbeat)")
	fs.Int64Var(&s.Seed, "shard-seed", 0, "seed for retry-backoff jitter (timing only, never output)")
}

// Obs carries the CLI-only observability flags (the daemon exposes the
// same data over HTTP instead).
type Obs struct {
	Stats       bool
	MetricsJSON bool
	TraceFile   string
	TraceDet    bool
	PprofAddr   string
}

// Register binds the observability flags on fs.
func (o *Obs) Register(fs *flag.FlagSet) {
	fs.BoolVar(&o.Stats, "stats", false, "print run metrics as sorted 'name value' lines")
	fs.BoolVar(&o.MetricsJSON, "metrics", false, "print run metrics as a JSON snapshot")
	fs.StringVar(&o.TraceFile, "trace", "", "write a JSONL event trace to this file")
	fs.BoolVar(&o.TraceDet, "trace-det", false, "deterministic trace (wall-clock-free, byte-comparable across worker counts)")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// WriteTrace flushes tr to path as JSONL — the shared tail of every
// CLI's -trace handling.
func WriteTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadInput reads the program source from path, or stdin when path is
// "-".
func ReadInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
