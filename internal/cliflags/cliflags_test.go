package cliflags

import (
	"encoding/json"
	"flag"
	"testing"
	"time"

	"mix"
)

func parse(t *testing.T, kind Kind, args ...string) Analysis {
	t.Helper()
	var a Analysis
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	a.Register(fs, kind)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse(%v) = %v", args, err)
	}
	return a
}

// TestRegisterCoreFlags pins that the historical mix CLI surface —
// names, defaults, and the -memo inversion — survives the shared
// registration.
func TestRegisterCoreFlags(t *testing.T) {
	a := parse(t, Core,
		"-symbolic", "-unsound", "-defer", "-merge", "off",
		"-env", "b:bool,x:int,r:int_ref",
		"-workers", "4", "-max-paths", "100", "-memo=false",
		"-deadline", "250ms", "-solver-timeout", "5ms")
	cfg := a.MixConfig()
	if cfg.Mode != mix.StartSymbolic || !cfg.Unsound || !cfg.DeferConditionals {
		t.Fatalf("mode flags lost: %+v", cfg)
	}
	if cfg.Merge != "off" || cfg.Workers != 4 || cfg.MaxPaths != 100 || !cfg.NoMemo {
		t.Fatalf("engine flags lost: %+v", cfg)
	}
	if cfg.Deadline != 250*time.Millisecond || cfg.SolverTimeout != 5*time.Millisecond {
		t.Fatalf("durations lost: %+v", cfg)
	}
	if cfg.Env["r"] != "int ref" || cfg.Env["b"] != "bool" {
		t.Fatalf("env parsing lost underscores: %v", cfg.Env)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("parsed config should validate: %v", err)
	}
}

// TestRegisterMicroCFlags pins the mixy surface, including the CLI
// defaults that differ from the library zero values.
func TestRegisterMicroCFlags(t *testing.T) {
	defaults := parse(t, MicroC)
	cfg := defaults.CConfig()
	if cfg.Entry != "main" || cfg.Merge != "joins" || cfg.MergeCap != 8 || cfg.NoMemo {
		t.Fatalf("CLI defaults drifted: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}

	a := parse(t, MicroC, "-pure", "-entry", "f", "-nocache", "-merge-cap", "3", "-workers", "2")
	cfg = a.CConfig()
	if !cfg.PureTypes || cfg.Entry != "f" || !cfg.NoCache || cfg.MergeCap != 3 || cfg.Workers != 2 {
		t.Fatalf("mixy flags lost: %+v", cfg)
	}
}

// TestBadEnvEntry pins that a malformed -env pair is a parse error,
// not a silent skip.
func TestBadEnvEntry(t *testing.T) {
	var a Analysis
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	a.Register(fs, Core)
	if err := fs.Parse([]string{"-env", "justaname"}); err == nil {
		t.Fatal("want parse error for -env entry without a colon")
	}
}

// TestDurationJSON pins the request-schema duration forms: a human
// string or a number of nanoseconds, and the string form on the way
// out.
func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"50ms"`), &d); err != nil || time.Duration(d) != 50*time.Millisecond {
		t.Fatalf(`"50ms" -> %v, %v`, time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`1000000`), &d); err != nil || time.Duration(d) != time.Millisecond {
		t.Fatalf("1000000 -> %v, %v", time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`{"x":1}`), &d); err == nil {
		t.Fatal("want error for a non-duration JSON value")
	}
	out, err := json.Marshal(Duration(2 * time.Second))
	if err != nil || string(out) != `"2s"` {
		t.Fatalf("marshal = %s, %v", out, err)
	}
}

// TestRequestDecoding pins the JSON side of the dual-purpose struct:
// the daemon decodes the same fields the CLIs register.
func TestRequestDecoding(t *testing.T) {
	body := `{
		"symbolic": true,
		"env": {"x": "int"},
		"workers": 3,
		"merge": "joins",
		"deadline": "100ms",
		"solver_timeout": 2000000,
		"no_memo": true
	}`
	var a Analysis
	if err := json.Unmarshal([]byte(body), &a); err != nil {
		t.Fatal(err)
	}
	cfg := a.MixConfig()
	if cfg.Mode != mix.StartSymbolic || cfg.Workers != 3 || !cfg.NoMemo ||
		cfg.Deadline != 100*time.Millisecond || cfg.SolverTimeout != 2*time.Millisecond ||
		cfg.Env["x"] != "int" {
		t.Fatalf("decoded config drifted: %+v", cfg)
	}
}
