// Package corpus holds the benchmark programs of the reproduction:
// MicroC transcriptions of the four vsftpd case studies from the
// paper's Section 4.5, core-language programs for the Section 2
// motivating idioms, and synthetic program generators for the scaling
// experiments. See DESIGN.md for the substitution argument (we do not
// have vsftpd-2.0.7; the cases are quoted in the paper and transcribed
// here).
package corpus

import (
	"fmt"
	"strings"
)

// Case is one MIXY case study.
type Case struct {
	Name string
	// Source is the annotated MicroC program.
	Source string
	// Entry is the entry function.
	Entry string
	// Paper describes the paper's claim for this case.
	Paper string
}

// Case1 is "Flow and path insensitivity in sockaddr_clear": pure
// qualifier inference warns because the *p_sock = NULL assignment
// flows (flow-insensitively) into sysutil_free's nonnull parameter and
// the null check is invisible (path-insensitivity); marking
// sockaddr_clear MIX(symbolic) eliminates the warning.
var Case1 = Case{
	Name:  "case1-sockaddr_clear",
	Entry: "main",
	Paper: "MIX(symbolic) on sockaddr_clear removes the flow/path-insensitive false positive",
	Source: `
struct sockaddr { int family; };

void sysutil_free(void *nonnull p_ptr) MIX(typed) { return; }

void sockaddr_clear(struct sockaddr **p_sock) MIX(symbolic) {
  if (*p_sock != NULL) {
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }
}

struct sockaddr *g_sock;

int main(void) {
  sockaddr_clear(&g_sock);
  return 0;
}
`,
}

// Case2 is "Path and context insensitivity in str_next_dirent": the
// null return of sysutil_next_dirent conflates, via the shared
// str_alloc_text parameter, with the unrelated str that reaches
// sysutil_free; marking str_next_dirent MIX(symbolic) removes the
// warning and adds context sensitivity.
var Case2 = Case{
	Name:  "case2-str_next_dirent",
	Entry: "main",
	Paper: "MIX(symbolic) on str_next_dirent removes the path/context-insensitive false positive",
	Source: `
void sysutil_free(void *nonnull p_ptr) MIX(typed) { return; }

int *g_text;

void str_alloc_text(int *p_filename) MIX(typed) {
  g_text = p_filename;
}

int *sysutil_next_dirent(int *p_dir) MIX(typed) {
  if (p_dir == NULL) return NULL;
  return p_dir;
}

void str_next_dirent(int *p_dir) MIX(symbolic) {
  int *p_filename = sysutil_next_dirent(p_dir);
  if (p_filename != NULL) {
    str_alloc_text(p_filename);
  }
}

int main(void) {
  int *str = malloc(sizeof(int));
  str_alloc_text(str);
  str_next_dirent(NULL);
  sysutil_free(g_text);
  return 0;
}
`,
}

// Case3 is "Flow- and path-insensitivity in dns_resolve and main":
// *p_sock is nulled twice (directly and by sockaddr_clear) and always
// repaired by sockaddr_alloc_ipv4/6 before reaching sysutil_free; the
// gethostbyname model restricts h_addrtype so the die() branch — whose
// function-pointer call the executor cannot analyze — is never taken.
var Case3 = Case{
	Name:  "case3-dns_resolve",
	Entry: "main",
	Paper: "extracting main_BLOCK as MIX(symbolic) removes both null-source false positives",
	Source: `
struct sockaddr { int family; };
struct hostent { int h_addrtype; };

void sysutil_free(void *nonnull p_ptr) MIX(typed) { return; }

void sockaddr_clear(struct sockaddr **p_sock) MIX(symbolic) {
  if (*p_sock != NULL) {
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }
}

void sockaddr_alloc_ipv4(struct sockaddr **p_sock) MIX(typed) {
  *p_sock = malloc(sizeof(struct sockaddr));
}

void sockaddr_alloc_ipv6(struct sockaddr **p_sock) MIX(typed) {
  *p_sock = malloc(sizeof(struct sockaddr));
}

int arbitrary_choice(void);

fnptr s_exit_func;
void die(int *msg) {
  /* eventually calls a function pointer; unanalyzable symbolically */
  (*s_exit_func)();
}

/* A well-behaved symbolic model of gethostbyname (Section 4.5): it
   returns only AF_INET (2) or AF_INET6 (10). */
struct hostent *gethostbyname(int *p_name) {
  struct hostent *hent = malloc(sizeof(struct hostent));
  if (arbitrary_choice() == 0) {
    hent->h_addrtype = 2;
  } else {
    hent->h_addrtype = 10;
  }
  return hent;
}

void dns_resolve(struct sockaddr **p_sock, int *p_name) {
  struct hostent *hent = gethostbyname(p_name);
  sockaddr_clear(p_sock);
  if (hent->h_addrtype == 2) {
    sockaddr_alloc_ipv4(p_sock);
  } else {
    if (hent->h_addrtype == 10) {
      sockaddr_alloc_ipv6(p_sock);
    } else {
      die(NULL);
    }
  }
}

void main_BLOCK(struct sockaddr **p_sock) MIX(symbolic) {
  *p_sock = NULL;
  dns_resolve(p_sock, NULL);
}

struct sockaddr *p_addr;

int main(void) {
  main_BLOCK(&p_addr);
  sysutil_free(p_addr);
  return 0;
}
`,
}

// Case4 is "Helping symbolic execution with symbolic function
// pointers": the call through s_exit_func is unanalyzable
// symbolically; extracting it into a MIX(typed) block analyzes it
// conservatively.
var Case4 = Case{
	Name:  "case4-sysutil_exit",
	Entry: "main",
	Paper: "MIX(typed) on sysutil_exit_BLOCK conservatively covers the function-pointer call",
	Source: `
fnptr s_exit_func;

void exit_(int code);

void sysutil_exit_BLOCK(void) MIX(typed) {
  if (s_exit_func != NULL) {
    (*s_exit_func)();
  }
}

void sysutil_exit(int exit_code) {
  sysutil_exit_BLOCK();
  exit_(exit_code);
}

void do_work(void) MIX(symbolic) {
  sysutil_exit(1);
}

int main(void) {
  do_work();
  return 0;
}
`,
}

// Case4NoTyped is Case4 without the typed block, demonstrating the
// executor's function-pointer limitation.
var Case4NoTyped = Case{
	Name:  "case4-without-typed-block",
	Entry: "main",
	Paper: "without the typed block the executor fails on the symbolic function pointer",
	Source: strings.Replace(Case4.Source,
		"void sysutil_exit_BLOCK(void) MIX(typed) {",
		"void sysutil_exit_BLOCK(void) {", 1),
}

// Cases are the four paper case studies in order.
var Cases = []Case{Case1, Case2, Case3, Case4}

// VsftpdMini combines all four case-study patterns into one
// translation unit, exercising multiple symbolic blocks, nested
// switching, caching, and the global fixed point in a single MIXY run
// — the closest approximation of analyzing the real program at once.
//
// Unlike the isolated cases, the combined program retains residual
// warnings: sockaddr_clear is now called from two contexts, and the
// context-insensitive pointer analysis conflates its p_sock targets
// ({g_sock, p_addr}), so the NULL written for the g_sock caller also
// constrains p_addr. This reproduces the paper's Section 4.6
// discussion verbatim: "since we rely on a context-insensitive pointer
// analysis to restore aliasing relationships ... these calls will
// again be conflated" and "pointers are initialized to point to
// targets from the entire program, rather than being limited to the
// enclosing context."
var VsftpdMini = Case{
	Name:  "vsftpd-mini",
	Entry: "main",
	Paper: "all four patterns at once; warnings drop but aliasing conflation (Section 4.6) leaves residuals",
	Source: `
struct sockaddr { int family; };
struct hostent { int h_addrtype; };

fnptr s_exit_func;
void exit_(int code);
int arbitrary_choice(void);

void sysutil_free(void *nonnull p_ptr) MIX(typed) { return; }

/* ---- Case 1: flow/path insensitivity ---- */
void sockaddr_clear(struct sockaddr **p_sock) MIX(symbolic) {
  if (*p_sock != NULL) {
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }
}

/* ---- Case 2: path/context insensitivity ---- */
int *g_text;
void str_alloc_text(int *p_filename) MIX(typed) {
  g_text = p_filename;
}
int *sysutil_next_dirent(int *p_dir) MIX(typed) {
  if (p_dir == NULL) return NULL;
  return p_dir;
}
void str_next_dirent(int *p_dir) MIX(symbolic) {
  int *p_filename = sysutil_next_dirent(p_dir);
  if (p_filename != NULL) {
    str_alloc_text(p_filename);
  }
}

/* ---- Case 3: two null sources repaired before use ---- */
void sockaddr_alloc_ipv4(struct sockaddr **p_sock) MIX(typed) {
  *p_sock = malloc(sizeof(struct sockaddr));
}
void sockaddr_alloc_ipv6(struct sockaddr **p_sock) MIX(typed) {
  *p_sock = malloc(sizeof(struct sockaddr));
}
void die(int *msg) {
  (*s_exit_func)();
}
struct hostent *gethostbyname(int *p_name) {
  struct hostent *hent = malloc(sizeof(struct hostent));
  if (arbitrary_choice() == 0) {
    hent->h_addrtype = 2;
  } else {
    hent->h_addrtype = 10;
  }
  return hent;
}
void dns_resolve(struct sockaddr **p_sock, int *p_name) {
  struct hostent *hent = gethostbyname(p_name);
  sockaddr_clear(p_sock);
  if (hent->h_addrtype == 2) {
    sockaddr_alloc_ipv4(p_sock);
  } else {
    if (hent->h_addrtype == 10) {
      sockaddr_alloc_ipv6(p_sock);
    } else {
      die(NULL);
    }
  }
}
void main_BLOCK(struct sockaddr **p_sock) MIX(symbolic) {
  *p_sock = NULL;
  dns_resolve(p_sock, NULL);
}

/* ---- Case 4: symbolic function pointer behind a typed block ---- */
void sysutil_exit_BLOCK(void) MIX(typed) {
  if (s_exit_func != NULL) {
    (*s_exit_func)();
  }
}
void sysutil_exit(int exit_code) {
  sysutil_exit_BLOCK();
  exit_(exit_code);
}
void do_work(void) MIX(symbolic) {
  sysutil_exit(1);
}

struct sockaddr *g_sock;
struct sockaddr *p_addr;

int main(void) {
  sockaddr_clear(&g_sock);
  int *str = malloc(sizeof(int));
  str_alloc_text(str);
  str_next_dirent(NULL);
  sysutil_free(g_text);
  main_BLOCK(&p_addr);
  sysutil_free(p_addr);
  do_work();
  return 0;
}
`,
}

// Idiom is one Section 2 motivating example in the core language.
type Idiom struct {
	Name string
	// Source is the annotated core-language program.
	Source string
	// Stripped is the same program with block annotations removed
	// (what the pure type checker sees).
	Stripped string
	// Env lists free variables as name:type (int|bool) pairs.
	Env [][2]string
	// PureTypeRejects records whether the pure type system must
	// reject the stripped program.
	PureTypeRejects bool
	// Paper cites the paper's wording.
	Paper string
}

// CoreIdioms are the Section 2 examples expressible in the core
// language (the function-based ones need MIXY; see Cases).
var CoreIdioms = []Idiom{
	{
		Name:            "unreachable-code",
		Source:          `{s if true then {t 5 t} else {t 1 + true t} s}`,
		Stripped:        `if true then 5 else 1 + true`,
		PureTypeRejects: true,
		Paper:           "pure type checking would complain about the potential type error in the false branch",
	},
	{
		Name:            "solver-proved-unreachable",
		Source:          `{s if x = x then {t 5 t} else {t 1 + true t} s}`,
		Stripped:        `if x = x then 5 else 1 + true`,
		Env:             [][2]string{{"x", "int"}},
		PureTypeRejects: true,
		Paper:           "symbolic execution discards paths whose condition is infeasible",
	},
	{
		Name:            "flow-sensitive-reuse",
		Source:          `{s let x = 1 in let _ = {t x + 1 t} in let x = true in {t not x t} s}`,
		Stripped:        `let x = 1 in let _ = x + 1 in let x = true in not x`,
		PureTypeRejects: false, // shadowing makes the stripped program typeable too
		Paper:           "programmers may reuse variables as different types",
	},
	{
		Name:            "null-then-malloc",
		Source:          `{s let x = ref 1 in let _ = x := true in let _ = x := 2 in {t !x + 1 t} s}`,
		Stripped:        `let x = ref 1 in let _ = x := true in let _ = x := 2 in !x + 1`,
		PureTypeRejects: true,
		Paper:           "x->obj is initially assigned NULL, immediately before a fresh allocation",
	},
	{
		Name: "local-refinement",
		// The paper's sign trichotomy: x > 0, x = 0, x < 0; each arm a
		// typed block, with exhaustiveness proved by the solver.
		Source: `{s if 0 < x then {t 10 t}
		           else (if x = 0 then {t 11 t} else {t 12 t}) s}`,
		Stripped: `if 0 < x then 10
		           else (if x = 0 then 11 else 12)`,
		Env:             [][2]string{{"x", "int"}},
		PureTypeRejects: false,
		Paper:           "the symbolic executor forks and explores the three sign possibilities exhaustively",
	},
	{
		Name: "init-before-share",
		Source: `{s let x = ref 0 in let _ = x := true in let _ = x := 1 in
		          let _ = x := 2 in {t !x t} s}`,
		Stripped: `let x = ref 0 in let _ = x := true in let _ = x := 1 in
		           let _ = x := 2 in !x`,
		PureTypeRejects: true,
		Paper:           "symbolic execution can observe that x is local during the initialization phase",
	},
	{
		Name:            "helping-symbolic-execution",
		Source:          `{s let r = {t if b1 then 1 else 2 t} in r + 1 s}`,
		Stripped:        `let r = (if b1 then 1 else 2) in r + 1`,
		Env:             [][2]string{{"b1", "bool"}},
		PureTypeRejects: false,
		Paper:           "typed blocks introduce conservative abstraction when symbolic execution is not viable",
	},
	{
		Name: "context-sensitivity-id",
		Source: `{s let id = fun x -> x in
		           (id 3) + (if id true then 1 else 0) s}`,
		Stripped: `let id = fun x : int -> x in
		           (id 3) + (if id true then 1 else 0)`,
		PureTypeRejects: true,
		Paper:           "the identity function is called with an int and a float; symbolic blocks check the calls by execution",
	},
	{
		Name: "path-and-context-sensitivity-div",
		Source: `{s let div = fun x -> fun y ->
		             if y = 0 then true else x + y in
		           (div 7 4) + 1 s}`,
		Stripped: `let div = fun x -> fun y ->
		             if y = 0 then true else x + y in
		           (div 7 4) + 1`,
		PureTypeRejects: true,
		Paper:           "div returns a string only when the second argument is 0 — out of reach of parametric polymorphism",
	},
	{
		Name:            "unknown-function-in-typed-block",
		Source:          `{s {t extfun 3 t} + 1 s}`,
		Stripped:        `extfun 3 + 1`,
		Env:             [][2]string{{"extfun", "int -> int"}},
		PureTypeRejects: false,
		Paper:           "a call to a function whose source code is not available, wrapped in a typed block, models the return value by its type",
	},
}

// SyntheticVsftpd generates a vsftpd-scale MicroC program with nFuncs
// worker functions in a call chain, of which kSymbolic are marked
// MIX(symbolic) (spread evenly). Each worker nulls and repairs a
// global connection buffer and calls the nonnull-annotated
// sysutil_free under a guard — the shape of the paper's case studies —
// so each added symbolic block costs translation solver queries and
// fixed-point work (the E3 timing experiment).
func SyntheticVsftpd(nFuncs, kSymbolic int) string {
	var b strings.Builder
	b.WriteString("struct conn { int *buf; int state; };\n")
	b.WriteString("void sysutil_free(void *nonnull p_ptr) MIX(typed) { return; }\n")
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b, "struct conn *g_conn%d;\n", i)
	}
	// The shared worker body: clear-and-reallocate its own connection,
	// and conditionally null the next one — so each symbolic block's
	// result changes the typed calling context of the others, driving
	// the fixed point (and the superlinear cost the paper reports).
	b.WriteString(`
void clear_conn(struct conn **p_conn, struct conn **p_next) {
  if (*p_conn != NULL) {
    sysutil_free(*p_conn);
    *p_conn = NULL;
  }
  *p_conn = malloc(sizeof(struct conn));
  if ((*p_conn)->state == 0) {
    *p_next = NULL;
  }
  return;
}
`)
	for i := 0; i < nFuncs; i++ {
		anno := ""
		if i < kSymbolic {
			anno = " MIX(symbolic)"
		}
		next := (i + 1) % nFuncs
		fmt.Fprintf(&b, "void work%d(void)%s {\n", i, anno)
		fmt.Fprintf(&b, "  clear_conn(&g_conn%d, &g_conn%d);\n", i, next)
		fmt.Fprintf(&b, "  return;\n}\n")
	}
	b.WriteString("int main(void) {\n")
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b, "  work%d();\n", i)
	}
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b, "  if (g_conn%d != NULL) { sysutil_free(g_conn%d); }\n", i, i)
	}
	b.WriteString("  return 0;\n}\n")
	return b.String()
}

// SharedHelpers generates the X9 summary-reuse benchmark family: n
// int-only helper functions, each a three-deep sequential conditional
// ladder (8 paths when explored), called kCalls times in total from
// one MIX(symbolic) entry that threads an accumulator through the
// calls. Without function summaries every call site re-explores its
// helper's paths from scratch; with summaries each helper is analyzed
// once and every call site instantiates the cached arms — so the
// inline cost scales with kCalls × paths while the summary cost
// scales with nHelpers × paths + kCalls. The helpers are int-only,
// loop-free, and non-recursive on purpose: the whole family sits
// inside the summarizable fragment (DESIGN.md section 14).
func SharedHelpers(nHelpers, kCalls int) string {
	if nHelpers < 1 {
		nHelpers = 1
	}
	var b strings.Builder
	for i := 0; i < nHelpers; i++ {
		// The constants differ per helper so each has distinct source
		// text (and so a distinct content hash in the summary store).
		fmt.Fprintf(&b, "int h%d(int a, int b) {\n", i)
		fmt.Fprintf(&b, "  if (a < b) { a = a + %d; } else { a = a - %d; }\n", i+1, i+2)
		fmt.Fprintf(&b, "  if (b < a) { b = b + %d; } else { b = b - %d; }\n", i+3, i+1)
		fmt.Fprintf(&b, "  if (a < b) { return a + b; }\n")
		fmt.Fprintf(&b, "  return a - b;\n}\n")
	}
	b.WriteString("int entry(int x, int y) MIX(symbolic) {\n  int acc = 0;\n")
	// The accumulator feeds back into the arguments so successive calls
	// see genuinely new symbolic inputs — otherwise the path condition
	// would prune every repeat call's forks and the inline baseline
	// would be artificially cheap.
	for j := 0; j < kCalls; j++ {
		if j%2 == 0 {
			fmt.Fprintf(&b, "  acc = acc + h%d(x, acc + y);\n", j%nHelpers)
		} else {
			fmt.Fprintf(&b, "  acc = acc + h%d(acc, x);\n", j%nHelpers)
		}
	}
	b.WriteString("  return acc;\n}\n")
	b.WriteString("int main(void) { return 0; }\n")
	return b.String()
}

// Ladder builds n sequential conditionals over symbolic booleans
// b0..b(n-1), summing their results — cheap for a type checker (O(n)),
// exponential for a forking symbolic executor (2^n paths, since the
// forks multiply).
func Ladder(n int) (string, [][2]string) {
	var env [][2]string
	var b strings.Builder
	for i := 0; i < n; i++ {
		env = append(env, [2]string{fmt.Sprintf("b%d", i), "bool"})
		fmt.Fprintf(&b, "let t%d = (if b%d then 1 else 2) in ", i, i)
	}
	b.WriteString("0")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, " + t%d", i)
	}
	return b.String(), env
}

// DeepConditionals generates the E5 frontier program family: a
// conditional ladder (expensive symbolically, trivial for types)
// guarded by a solver-refutable condition whose dead branch is
// ill-typed (impossible for types, trivial symbolically).
//
// It returns the plain program — rejected by pure typing, accepted by
// pure symbolic execution at 2^n-path cost — and the mixed program,
// which wraps the guard in a symbolic block and the ladder in a typed
// block, getting both precision and O(n) cost.
func DeepConditionals(n int) (plain, mixed string, env [][2]string) {
	ladder, env := Ladder(n)
	env = append(env, [2]string{"x", "int"})
	plain = fmt.Sprintf("if x = x then (%s) else (1 + true)", ladder)
	mixed = fmt.Sprintf("{s if x = x then {t %s t} else {t 1 + true t} s}", ladder)
	return plain, mixed, env
}
