package corpus

import (
	"strings"
	"testing"

	"mix/internal/lang"
	"mix/internal/microc"
)

func TestCasesParse(t *testing.T) {
	for _, c := range append(Cases, Case4NoTyped) {
		if _, err := microc.Parse(c.Source); err != nil {
			t.Errorf("%s does not parse: %v", c.Name, err)
		}
		if c.Entry != "main" {
			t.Errorf("%s: unexpected entry %s", c.Name, c.Entry)
		}
	}
}

func TestCase4VariantDiffers(t *testing.T) {
	if Case4.Source == Case4NoTyped.Source {
		t.Fatal("Case4NoTyped must strip the MIX(typed) annotation")
	}
	prog := mustParse(Case4NoTyped.Source)
	f, ok := prog.Func("sysutil_exit_BLOCK")
	if !ok || f.Mix != microc.MixNone {
		t.Fatalf("annotation not stripped: %+v", f)
	}
}

func TestIdiomsParse(t *testing.T) {
	for _, idiom := range CoreIdioms {
		if _, err := lang.Parse(idiom.Source); err != nil {
			t.Errorf("%s source: %v", idiom.Name, err)
		}
		if _, err := lang.Parse(idiom.Stripped); err != nil {
			t.Errorf("%s stripped: %v", idiom.Name, err)
		}
		if strings.Contains(idiom.Stripped, "{s") || strings.Contains(idiom.Stripped, "{t") {
			t.Errorf("%s stripped still contains blocks", idiom.Name)
		}
	}
}

func TestSyntheticVsftpdShape(t *testing.T) {
	for _, k := range []int{0, 1, 3} {
		src := SyntheticVsftpd(6, k)
		prog, err := microc.Parse(src)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		symbolic := 0
		for _, f := range prog.Funcs {
			if f.Mix == microc.MixSymbolic {
				symbolic++
			}
		}
		if symbolic != k {
			t.Fatalf("k=%d: got %d symbolic functions", k, symbolic)
		}
		if _, ok := prog.Func("main"); !ok {
			t.Fatal("main missing")
		}
	}
}

func TestLadderShape(t *testing.T) {
	src, env := Ladder(5)
	if len(env) != 5 {
		t.Fatalf("env = %v", env)
	}
	if _, err := lang.Parse(src); err != nil {
		t.Fatalf("ladder does not parse: %v", err)
	}
}

func TestDeepConditionalsParse(t *testing.T) {
	plain, mixed, env := DeepConditionals(4)
	if _, err := lang.Parse(plain); err != nil {
		t.Fatalf("plain: %v", err)
	}
	if _, err := lang.Parse(mixed); err != nil {
		t.Fatalf("mixed: %v", err)
	}
	if len(env) != 5 { // 4 booleans + x
		t.Fatalf("env = %v", env)
	}
	if !strings.Contains(mixed, "{s") || !strings.Contains(mixed, "{t") {
		t.Fatal("mixed variant must contain blocks")
	}
	if strings.Contains(plain, "{s") {
		t.Fatal("plain variant must not contain blocks")
	}
}

// mustParse parses a MicroC test fixture, panicking on error; the
// library itself reports parse errors through the normal return path,
// fixtures are expected to be valid.
func mustParse(src string) *microc.Program {
	prog, err := microc.Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
