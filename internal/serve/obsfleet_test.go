package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"mix/internal/obs"
	"mix/internal/shard"
)

// TestMain lets the sharded-serving tests spawn real worker processes:
// the shard process dialer re-executes this test binary, and
// WorkerMain turns that re-execution into a serving worker.
func TestMain(m *testing.M) {
	shard.WorkerMain()
	os.Exit(m.Run())
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return resp, b.String()
}

// TestPrometheusScrape pins the exposition surface: the format query
// switches /metrics to the Prometheus text format with the right
// content type, HELP/TYPE lines, and the per-tenant RED series.
func TestPrometheusScrape(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := ladderRequest(2)
	req.Tenant = "acme"
	post(t, ts.URL+"/check", req)

	resp, body := getBody(t, ts.URL+"/metrics?format=prometheus")
	if resp.StatusCode != 200 {
		t.Fatalf("prometheus scrape = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.PromContentType)
	}
	for _, want := range []string{
		"# TYPE serve_requests counter\n",
		"serve_requests 1\n",
		"# TYPE serve_latency_ns histogram\n",
		"serve_latency_ns_bucket{le=\"+Inf\"} 1\n",
		"# TYPE serve_tenant_acme_requests counter\n",
		"serve_tenant_acme_requests 1\n",
		"serve_tenant_acme_errors 0\n",
		"serve_tenant_acme_latency_ns_count 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
	// The default JSON schema is untouched.
	jresp, jbody := getBody(t, ts.URL+"/metrics")
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default scrape content type = %q", ct)
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal([]byte(jbody), &snap); err != nil {
		t.Fatalf("default scrape is not the JSON schema: %v", err)
	}
}

// TestTenantREDMetrics pins the per-tenant series: requests count per
// tenant, errors count rejects and degradations, and the default
// tenant absorbs unnamed requests.
func TestTenantREDMetrics(t *testing.T) {
	srv, ts := newTestServer(t, Options{})

	named := ladderRequest(2)
	named.Tenant = "acme"
	post(t, ts.URL+"/check", named)
	post(t, ts.URL+"/check", named)
	bad := named
	bad.Source = "let let" // parse error: a 400, so an error for RED
	post(t, ts.URL+"/check", bad)
	post(t, ts.URL+"/check", ladderRequest(2)) // tenant "default"

	reg := srv.reg
	if v := reg.Counter("serve.tenant.acme.requests").Value(); v != 3 {
		t.Fatalf("acme requests = %d, want 3", v)
	}
	if v := reg.Counter("serve.tenant.acme.errors").Value(); v != 1 {
		t.Fatalf("acme errors = %d, want the one parse-error 400", v)
	}
	if v := reg.Histogram("serve.tenant.acme.latency.ns").Count(); v != 3 {
		t.Fatalf("acme latency count = %d, want 3", v)
	}
	if v := reg.Counter("serve.tenant.default.requests").Value(); v != 1 {
		t.Fatalf("default requests = %d, want 1", v)
	}
}

// TestTenantREDBoundedEviction pins the registry bound: past
// maxTenants the stalest tenant's series is evicted from the registry
// wholesale, so a tenant-per-request client cannot grow it without
// limit.
func TestTenantREDBoundedEviction(t *testing.T) {
	reg := obs.NewRegistry()
	now := time.Unix(1000, 0)
	red := newTenantRED(reg, func() time.Time { return now })
	red.observe("earliest", false, 100)
	for i := 0; i < maxTenants-1; i++ {
		now = now.Add(time.Millisecond)
		red.observe("t"+strconv.Itoa(i), false, 100)
	}
	if n := len(red.m); n != maxTenants {
		t.Fatalf("tenant map = %d entries, want full at %d", n, maxTenants)
	}
	now = now.Add(time.Millisecond)
	red.observe("newcomer", true, 100)
	if len(red.m) != maxTenants {
		t.Fatalf("tenant map grew past the bound: %d", len(red.m))
	}
	if _, ok := red.m["earliest"]; ok {
		t.Fatal("stalest tenant not evicted")
	}
	if v := reg.Counter("serve.tenant.earliest.requests").Value(); v != 0 {
		t.Fatalf("evicted tenant's registry series survives: %d", v)
	}
	if v := reg.Counter("serve.tenant.newcomer.errors").Value(); v != 1 {
		t.Fatalf("newcomer errors = %d, want 1", v)
	}
}

// TestTenantNameCannotCrossEvict pins the sanitization rule: a tenant
// name containing dots flattens to one path component, so evicting
// tenant "a" can never remove tenant "a.b"'s series.
func TestTenantNameCannotCrossEvict(t *testing.T) {
	reg := obs.NewRegistry()
	red := newTenantRED(reg, nil)
	red.observe("a.b", false, 100)
	if v := reg.Counter("serve.tenant.a_b.requests").Value(); v != 1 {
		t.Fatalf("dotted tenant series = %d under the flattened name, want 1", v)
	}
	if n := reg.RemovePrefix("serve.tenant.a."); n != 0 {
		t.Fatalf("prefix of tenant \"a\" removed %d of tenant \"a.b\"'s metrics", n)
	}
}

// TestFlightRecorder pins the always-on ring: every request lands in
// /debug/flight — rejects included — with tenant, verdict, and
// latency; the ring is bounded, keeping the newest entries.
func TestFlightRecorder(t *testing.T) {
	_, ts := newTestServer(t, Options{FlightSize: 3})

	first := ladderRequest(2)
	first.Tenant = "dropme"
	post(t, ts.URL+"/check", first) // will be overwritten by the next 3
	ok := ladderRequest(3)
	ok.Tenant = "acme"
	post(t, ts.URL+"/check", ok)
	post(t, ts.URL+"/check", ok) // verdict-cache hit
	bad := ok
	bad.Source = "let let"
	post(t, ts.URL+"/check", bad)

	resp, body := getBody(t, ts.URL+"/debug/flight")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/flight = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("flight content type = %q", ct)
	}
	var entries []FlightEntry
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var e FlightEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("flight row %q: %v", line, err)
		}
		entries = append(entries, e)
	}
	if len(entries) != 3 {
		t.Fatalf("flight holds %d entries, want the ring bound of 3", len(entries))
	}
	if entries[0].Tenant != "acme" || entries[0].Status != 200 || entries[0].Verdict != "ok" || entries[0].Cached {
		t.Fatalf("entry 0 = %+v, want the first acme run", entries[0])
	}
	if !entries[1].Cached || entries[1].Verdict != "ok" {
		t.Fatalf("entry 1 = %+v, want the verdict-cache hit", entries[1])
	}
	if entries[2].Status != 400 || entries[2].Verdict != "" {
		t.Fatalf("entry 2 = %+v, want the 400 reject", entries[2])
	}
	for i, e := range entries {
		if e.LatencyNS <= 0 || e.TNs <= 0 || e.Kind != "core" {
			t.Fatalf("entry %d missing timing/kind: %+v", i, e)
		}
	}
}

// TestScrapesSurviveDrain pins the drain split: once draining, the
// analysis endpoints 503 and /healthz reports not-ready, but /metrics
// (both formats) and /debug/flight keep answering 200 — a draining
// daemon's last readings are exactly the ones worth scraping.
func TestScrapesSurviveDrain(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	req := ladderRequest(2)
	req.Tenant = "acme"
	post(t, ts.URL+"/check", req)

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if resp, _ := post(t, ts.URL+"/check", req); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("analysis during drain = %d, want 503", resp.StatusCode)
	}
	hz, _ := getBody(t, ts.URL+"/healthz")
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", hz.StatusCode)
	}
	mj, jbody := getBody(t, ts.URL+"/metrics")
	if mj.StatusCode != 200 || !strings.Contains(jbody, "serve.requests") {
		t.Fatalf("JSON scrape during drain = %d", mj.StatusCode)
	}
	mp, pbody := getBody(t, ts.URL+"/metrics?format=prometheus")
	if mp.StatusCode != 200 || !strings.Contains(pbody, "serve_requests 1") {
		t.Fatalf("prometheus scrape during drain = %d:\n%s", mp.StatusCode, pbody)
	}
	// The drained-request rejections themselves are observable.
	if !strings.Contains(pbody, "serve_rejected_draining 1") {
		t.Fatalf("draining rejections missing from the scrape:\n%s", pbody)
	}
	fl, fbody := getBody(t, ts.URL+"/debug/flight")
	if fl.StatusCode != 200 || !strings.Contains(fbody, `"tenant":"acme"`) {
		t.Fatalf("flight dump during drain = %d:\n%s", fl.StatusCode, fbody)
	}
}

// TestShardedServeMergesWorkerMetrics pins satellite aggregation end
// to end through the daemon: a sharded check's worker-side analysis
// counters (engine paths, solver queries) land in the server registry
// — scrape-visible and part of the final drain flush — and the
// request itself lands in the flight recorder.
func TestShardedServeMergesWorkerMetrics(t *testing.T) {
	srv, ts := newTestServer(t, Options{Shards: 2})
	req := ladderRequest(3)
	req.Tenant = "fleet"
	resp, body := post(t, ts.URL+"/check", req)
	if resp.StatusCode != 200 {
		t.Fatalf("sharded /check = %d: %s", resp.StatusCode, body)
	}
	if r := decode(t, body); r.Check == nil || r.Check.Degraded || r.Check.Type != "int" {
		t.Fatalf("sharded verdict: %s", body)
	}
	if v := srv.reg.Gauge("engine.paths").Value(); v <= 0 {
		t.Fatalf("engine.paths = %d in the server registry: worker metrics were not merged", v)
	}
	if v := srv.reg.Gauge("solver.queries").Value(); v <= 0 {
		t.Fatalf("solver.queries = %d: worker metrics were not merged", v)
	}
	if v := srv.reg.Counter("shard.items_done").Value(); v <= 0 {
		t.Fatalf("shard.items_done = %d: coordinator counters were not merged", v)
	}
	_, fbody := getBody(t, ts.URL+"/debug/flight")
	if !strings.Contains(fbody, `"tenant":"fleet"`) {
		t.Fatalf("sharded request missing from flight: %s", fbody)
	}
}
