package serve

import (
	"container/list"
	"sync"
)

// respCache is the request-level verdict cache: an LRU from
// (kind, source, options) to the completed analysis result. It is the
// strongest form of cross-request warmth — an identical request is
// answered without re-running the analysis at all — and it is safe
// because entries are only written for non-degraded runs, whose
// verdicts are deterministic functions of exactly the key. Degraded
// results (deadline expiries, cancellations) depend on wall clock and
// load, so they are never stored; a retry re-runs.
type respCache struct {
	mu     sync.Mutex
	cap    int
	ents   map[string]*list.Element
	lru    *list.List // front = most recently used *respEntry
	hits   int64
	misses int64
}

type respEntry struct {
	key string
	// check/analyze: exactly one is non-nil, matching the request kind.
	check   *CheckResult
	analyze *AnalyzeResult
}

func newRespCache(capacity int) *respCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &respCache{cap: capacity, ents: map[string]*list.Element{}, lru: list.New()}
}

func (c *respCache) get(key string) *respEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ents[key]
	if !ok {
		c.misses++
		return nil
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*respEntry)
}

func (c *respCache) put(e *respEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ents[e.key]; ok {
		return
	}
	c.ents[e.key] = c.lru.PushFront(e)
	if c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.ents, old.Value.(*respEntry).key)
	}
}

// flush drops every entry; the hit/miss counters survive (they are
// lifetime observability, not cache state).
func (c *respCache) flush() {
	c.mu.Lock()
	c.ents = map[string]*list.Element{}
	c.lru = list.New()
	c.mu.Unlock()
}

func (c *respCache) stats() (entries int, hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.hits, c.misses
}
