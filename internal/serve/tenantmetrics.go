package serve

import (
	"strings"
	"sync"
	"time"

	"mix/internal/obs"
)

// tenantRED keeps per-tenant RED metrics (Rate, Errors, Duration) in
// the server registry, under "serve.tenant.<tenant>.": a request
// counter, an error/degraded counter, and a latency histogram per
// tenant. Like the admission map, the tenant set is bounded at
// maxTenants with stalest-eviction, so a tenant-per-request client
// cannot grow the registry without limit; eviction removes the
// tenant's metrics from the registry wholesale (obs.Registry
// RemovePrefix), and a returning tenant starts fresh.
type tenantRED struct {
	mu  sync.Mutex
	reg *obs.Registry
	now func() time.Time
	m   map[string]*redEntry
}

type redEntry struct {
	last     time.Time
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

func newTenantRED(reg *obs.Registry, now func() time.Time) *tenantRED {
	if now == nil {
		now = time.Now
	}
	return &tenantRED{reg: reg, now: now, m: map[string]*redEntry{}}
}

// redKey flattens a tenant name into one dotted-path component:
// eviction removes by name prefix, so a dot inside a tenant name must
// not fabricate path structure (tenant "a" would otherwise evict
// tenant "a.b"'s metrics).
func redKey(tenant string) string {
	return strings.ReplaceAll(tenant, ".", "_")
}

// observe records one finished request for tenant: the request count,
// the error/degraded count, and the latency distribution.
func (t *tenantRED) observe(tenant string, errored bool, latencyNS int64) {
	t.mu.Lock()
	e := t.m[tenant]
	if e == nil {
		if len(t.m) >= maxTenants {
			t.evictStalest()
		}
		prefix := "serve.tenant." + redKey(tenant) + "."
		e = &redEntry{
			requests: t.reg.Counter(prefix + "requests"),
			errors:   t.reg.Counter(prefix + "errors"),
			latency:  t.reg.Histogram(prefix + "latency.ns"),
		}
		t.m[tenant] = e
	}
	e.last = t.now()
	t.mu.Unlock()
	e.requests.Inc()
	if errored {
		e.errors.Inc()
	}
	e.latency.Observe(latencyNS)
}

// evictStalest drops the tenant idle the longest, together with its
// registry metrics (caller holds mu).
func (t *tenantRED) evictStalest() {
	var stalest string
	first := true
	for k, e := range t.m {
		if first || e.last.Before(t.m[stalest].last) {
			stalest, first = k, false
		}
	}
	delete(t.m, stalest)
	t.reg.RemovePrefix("serve.tenant." + redKey(stalest) + ".")
}
