// Package serve is the analysis-as-a-service layer: a long-lived HTTP
// daemon wrapping the mix.Check / mix.AnalyzeC facade, so cache warmth
// amortizes across requests instead of being rebuilt per process. See
// DESIGN.md section 13 for the architecture.
//
// The server owns two caches that outlive any single request:
//
//   - a shared engine.Cache (hash-cons ids, per-component solver memo,
//     counterexample models, warm per-worker solver instances), which
//     every engine-backed request reads and extends,
//   - a shared summary.Store, so function summaries computed for one
//     request answer later requests that analyze the same code, and
//   - a request-level verdict cache, answering byte-identical repeat
//     requests without re-running the analysis.
//
// All are bounded and all drop their in-memory tier on POST /flush.
// With Options.CacheDir set, the solver memo, counterexample models,
// and function summaries also persist to disk: a restarted daemon
// starts warm, and /flush does not touch the disk tier. Degraded
// results are never cached — they depend on wall clock and load, not
// just the request.
//
// Admission control is a per-tenant token bucket (fairness across
// tenants at one shared rate) plus a global in-flight cap; rejected
// requests get 429 with Retry-After, and a draining server answers 503.
// A request's deadline is enforced inside the analysis via the
// internal/fault plumbing: expiry degrades the verdict — still a 200,
// with "degraded", the fault class, and a "retryable" hint — because a
// truncated analysis is an answer ("unknown"), not a transport error.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mix"
	"mix/internal/cliflags"
	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/obs"
	"mix/internal/profiling"
	"mix/internal/shard"
	"mix/internal/summary"
)

// maxBodyBytes bounds a request body; programs are source text, so a
// few megabytes is generous.
const maxBodyBytes = 8 << 20

// Options configures a Server. The zero value serves: no rate limit,
// in-flight cap of 4×GOMAXPROCS, 10s default / 60s maximum deadline,
// default cache sizes.
type Options struct {
	// MaxConcurrent caps in-flight analyses (0 = 4×GOMAXPROCS).
	// Admission beyond the cap is answered 429, not queued: under
	// sustained overload a bounded queue only adds latency before the
	// same rejection.
	MaxConcurrent int
	// RatePerSec is each tenant's sustained admission rate in requests
	// per second (0 = no rate limiting); Burst is the bucket size
	// (0 = max(1, RatePerSec)).
	RatePerSec float64
	Burst      int
	// DefaultDeadline applies when a request carries none; MaxDeadline
	// clamps what a request may ask for. Zero values mean 10s and 60s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MemoSize and ConsLimit size the shared engine cache (see
	// engine.CacheOptions). ResponseCacheSize bounds the verdict cache
	// (0 = 4096 entries).
	MemoSize          int
	ConsLimit         int
	ResponseCacheSize int
	// CacheDir, when non-empty, backs the engine cache and the summary
	// store with a persistent on-disk tier: verdicts, models, and
	// summaries survive daemon restarts (warm start), and POST /flush
	// drops only the in-memory generations. Server-side configuration
	// only — requests cannot name filesystem paths.
	CacheDir string
	// Shards > 0 runs core-language checks through the sharded
	// exploration coordinator (internal/shard, DESIGN.md section 15):
	// each check splits into 2^ShardDepth subtree work items
	// dispatched to that many worker processes, with heartbeat
	// supervision, retry, and graceful degradation of lost subtrees.
	// Server-side configuration only — requests cannot spawn
	// processes. MicroC requests stay in-process either way: their
	// value from the daemon is cache warmth, which worker processes
	// cannot share. ShardDepth 0 means the coordinator default (2).
	Shards     int
	ShardDepth int
	// Registry receives the server's own metrics (request counts,
	// rejections, latency, cache gauges, per-tenant RED series). Nil
	// creates a private one; it is exposed at GET /metrics either way
	// (obs JSON by default, Prometheus text format with
	// ?format=prometheus).
	Registry *obs.Registry
	// FlightSize bounds the flight recorder — the always-on ring of
	// recent request summaries dumped at GET /debug/flight and on
	// drain. 0 means 1024 entries; negative disables it.
	FlightSize int
	// Now is the clock (tests only; nil = time.Now).
	Now func() time.Time
}

// Server is the serving state: caches, admission control, metrics,
// and the drain flag. Construct with New.
type Server struct {
	opts  Options
	cache   *engine.Cache
	sums    *summary.Store
	resp    *respCache
	adm     *tenantBuckets
	reg     *obs.Registry
	tenants *tenantRED
	flight  *flightRecorder

	inflight    chan struct{}
	inflightNow atomic.Int64
	draining    atomic.Bool
	wg          sync.WaitGroup

	requests    *obs.Counter
	cachedHits  *obs.Counter
	rejected429 *obs.Counter
	rejected503 *obs.Counter
	badRequests *obs.Counter
	degraded    *obs.Counter
	latency     *obs.Histogram
	flushes     *obs.Counter
}

// New builds a Server from o.
func New(o Options) *Server {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 10 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 60 * time.Second
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	s := &Server{
		opts:     o,
		cache:    engine.NewCache(engine.CacheOptions{MemoSize: o.MemoSize, ConsLimit: o.ConsLimit, Dir: o.CacheDir}),
		sums:     summary.NewStore(o.CacheDir),
		resp:     newRespCache(o.ResponseCacheSize),
		adm:      newTenantBuckets(o.RatePerSec, o.Burst, o.Now),
		reg:      o.Registry,
		tenants:  newTenantRED(o.Registry, o.Now),
		flight:   newFlightRecorder(o.FlightSize),
		inflight: make(chan struct{}, o.MaxConcurrent),

		requests:    o.Registry.Counter("serve.requests"),
		cachedHits:  o.Registry.Counter("serve.responses.cached"),
		rejected429: o.Registry.Counter("serve.rejected.ratelimit"),
		rejected503: o.Registry.Counter("serve.rejected.draining"),
		badRequests: o.Registry.Counter("serve.rejected.badrequest"),
		degraded:    o.Registry.Counter("serve.responses.degraded"),
		latency:     o.Registry.Histogram("serve.latency.ns"),
		flushes:     o.Registry.Counter("serve.flushes"),
	}
	return s
}

// Request is one analysis request: the program source plus the same
// option set the CLIs accept (cliflags.Analysis defines the JSON
// names), a tenant for admission accounting, and response shaping.
type Request struct {
	cliflags.Analysis
	// Source is the program text (core language for /check, MicroC for
	// /analyze).
	Source string `json:"source"`
	// Tenant names the admission-control bucket; empty = "default".
	Tenant string `json:"tenant,omitempty"`
	// Metrics asks for the run's own metrics snapshot in the response.
	Metrics bool `json:"metrics,omitempty"`
	// Trace asks for the run's deterministic event trace (JSONL rows).
	// Traced requests bypass the verdict cache: a cached verdict has no
	// run to trace.
	Trace bool `json:"trace,omitempty"`
}

// CheckResult is the JSON rendering of mix.Result.
type CheckResult struct {
	Type          string   `json:"type,omitempty"`
	Error         string   `json:"error,omitempty"`
	Reports       []string `json:"reports,omitempty"`
	Paths         int      `json:"paths"`
	Merges        int      `json:"merges"`
	SolverQueries int      `json:"solver_queries"`
	MemoHits      int      `json:"memo_hits"`
	MemoMisses    int      `json:"memo_misses"`
	QuickDecided  int      `json:"quick_decided"`
	CexHits       int      `json:"cex_hits"`
	Degraded      bool     `json:"degraded,omitempty"`
	Fault         string   `json:"fault,omitempty"`
	FaultDetail   string   `json:"fault_detail,omitempty"`
}

// AnalyzeResult is the JSON rendering of mix.CResult.
type AnalyzeResult struct {
	Warnings       []string `json:"warnings,omitempty"`
	Merges         int      `json:"merges"`
	BlocksAnalyzed int      `json:"blocks_analyzed"`
	CacheHits      int      `json:"block_cache_hits"`
	FixpointIters  int      `json:"fixpoint_iters"`
	SolverQueries  int      `json:"solver_queries"`
	MemoHits       int      `json:"memo_hits"`
	MemoMisses     int      `json:"memo_misses"`
	QuickDecided   int      `json:"quick_decided"`
	CexHits        int      `json:"cex_hits"`
	Degraded       bool     `json:"degraded,omitempty"`
	Fault          string   `json:"fault,omitempty"`
	FaultDetail    string   `json:"fault_detail,omitempty"`
}

// Response is the envelope of every 200.
type Response struct {
	// Kind is "core" or "microc", matching the endpoint.
	Kind string `json:"kind"`
	// Check / Analyze carries the result; exactly one is set.
	Check   *CheckResult   `json:"check,omitempty"`
	Analyze *AnalyzeResult `json:"analyze,omitempty"`
	// Cached reports a verdict-cache hit: the analysis did not run.
	Cached bool `json:"cached"`
	// Retryable hints that the degradation (if any) was transient —
	// retrying the identical request may genuinely succeed. See
	// fault.Class.Transient.
	Retryable bool `json:"retryable,omitempty"`
	// LatencyNS is the server-side processing time of this request.
	LatencyNS int64 `json:"latency_ns"`
	// Metrics is the run's metrics snapshot (with "metrics": true).
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
	// Trace is the run's deterministic JSONL trace (with "trace": true).
	Trace []json.RawMessage `json:"trace,omitempty"`
}

// errorBody is the envelope of every non-200.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSec mirrors the Retry-After header on 429/503.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// Handler returns the daemon's HTTP surface:
//
//	POST /check         core-language analysis
//	POST /analyze       MicroC (MIXY) analysis
//	POST /flush         drop all in-memory caches (admin)
//	GET  /metrics       server metrics snapshot (obs JSON schema, or
//	                    Prometheus text format with ?format=prometheus)
//	GET  /healthz       readiness (503 once draining)
//	GET  /debug/flight  flight-recorder dump (JSONL, oldest first)
//
// The observability endpoints (/metrics, /debug/flight) have no drain
// gate: a draining daemon keeps answering scrapes — that is exactly
// when the last readings matter — while the analysis endpoints 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /check", s.analysisHandler("core"))
	mux.Handle("POST /analyze", s.analysisHandler("microc"))
	mux.HandleFunc("POST /flush", func(w http.ResponseWriter, r *http.Request) {
		s.Flush()
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"flushed":true}`)
	})
	mux.Handle("GET /metrics", profiling.MetricsHandler(s.reg, s.collect))
	mux.Handle("GET /healthz", profiling.HealthzHandler(s.Ready))
	mux.HandleFunc("GET /debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.flight.WriteJSONL(w)
	})
	return mux
}

// WriteFlight dumps the flight recorder as JSONL, oldest entry first —
// what mixd writes on SIGTERM so a crash-looping deployment leaves its
// last requests on stderr. A disabled recorder writes nothing.
func (s *Server) WriteFlight(w io.Writer) error { return s.flight.WriteJSONL(w) }

// Flush drops the in-memory tiers of the solver cache, the summary
// store, and the verdict cache. The persistent tier (Options.CacheDir)
// survives: flushing resets warmth, it does not delete the cross-run
// store. Safe under load: in-flight queries finish against the
// generation they captured.
func (s *Server) Flush() {
	s.cache.Flush()
	s.sums.Flush()
	s.resp.flush()
	s.flushes.Inc()
}

// Ready reports whether the server is admitting requests.
func (s *Server) Ready() bool { return !s.draining.Load() }

// Drain stops admitting work and waits for in-flight requests to
// finish, or for ctx to expire — the SIGTERM path. It returns nil when
// every in-flight request completed (zero dropped), or the context
// error if some were still running at the cutoff. Either way the
// persistent cache tier is written back before returning, so the next
// daemon start is warm (summaries write through at compute time and
// need no step here).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if perr := s.cache.Persist(); perr != nil && err == nil {
		err = perr
	}
	return err
}

// Cache exposes the shared solver cache (stats for /metrics and
// tests).
func (s *Server) Cache() *engine.Cache { return s.cache }

// Summaries exposes the shared function-summary store (stats for
// /metrics and tests).
func (s *Server) Summaries() *summary.Store { return s.sums }

// collect refreshes the on-demand gauges before a /metrics scrape.
func (s *Server) collect() {
	cs := s.cache.Stats()
	s.reg.Gauge("serve.solvercache.memo_entries").Set(int64(cs.MemoEntries))
	s.reg.Gauge("serve.solvercache.cons_entries").Set(int64(cs.ConsEntries))
	s.reg.Gauge("serve.solvercache.memo_hits").Set(cs.MemoHits)
	s.reg.Gauge("serve.solvercache.memo_misses").Set(cs.MemoMisses)
	s.reg.Gauge("serve.solvercache.cex_hits").Set(cs.CexHits)
	s.reg.Gauge("serve.solvercache.evictions").Set(cs.Evictions)
	s.reg.Gauge("serve.solvercache.disk_entries").Set(int64(cs.DiskEntries))
	s.reg.Gauge("serve.solvercache.disk_hits").Set(cs.DiskHits)
	s.reg.Gauge("serve.solvercache.disk_corrupt").Set(cs.DiskCorrupt)
	ss := s.sums.Stats()
	s.reg.Gauge("serve.summaries.entries").Set(int64(ss.Entries))
	s.reg.Gauge("serve.summaries.mem_hits").Set(ss.MemHits)
	s.reg.Gauge("serve.summaries.disk_hits").Set(ss.DiskHits)
	s.reg.Gauge("serve.summaries.computed").Set(ss.Computed)
	s.reg.Gauge("serve.summaries.corrupt").Set(ss.Corrupt)
	entries, hits, misses := s.resp.stats()
	s.reg.Gauge("serve.respcache.entries").Set(int64(entries))
	s.reg.Gauge("serve.respcache.hits").Set(hits)
	s.reg.Gauge("serve.respcache.misses").Set(misses)
	s.reg.Gauge("serve.inflight").Set(s.inflightNow.Load())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) reject(w http.ResponseWriter, code int, retryAfter time.Duration, msg string) {
	body := errorBody{Error: msg}
	if retryAfter > 0 {
		sec := int(retryAfter.Seconds() + 0.999)
		if sec < 1 {
			sec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		body.RetryAfterSec = sec
	}
	writeJSON(w, code, body)
}

// analysisHandler is the shared request lifecycle of /check and
// /analyze: drain gate → decode → validate (400) → admission (429) →
// verdict cache → run → respond. kind is "core" or "microc". Every
// exit — rejects included — lands in the flight recorder, and every
// exit with a known tenant lands in that tenant's RED series.
func (s *Server) analysisHandler(kind string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Register with the drain group before checking the flag:
		// either Drain sees this request in the group and waits for it,
		// or this request sees the flag and bows out — it cannot fall
		// between.
		s.wg.Add(1)
		defer s.wg.Done()
		t0 := time.Now()
		fe := FlightEntry{TNs: t0.UnixNano(), Kind: kind}
		// finish records the request in the flight recorder and the
		// tenant's RED series. It runs before the response bytes go out,
		// so a client that scrapes right after its own request always
		// sees that request accounted.
		finish := func(status int) {
			fe.Status = status
			fe.LatencyNS = int64(time.Since(t0))
			s.flight.record(fe)
			if fe.Tenant != "" {
				s.tenants.observe(fe.Tenant, status != http.StatusOK || fe.Verdict == "degraded", fe.LatencyNS)
			}
		}
		if s.draining.Load() {
			s.rejected503.Inc()
			finish(http.StatusServiceUnavailable)
			s.reject(w, http.StatusServiceUnavailable, time.Second, "server is draining")
			return
		}

		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.badRequests.Inc()
			finish(http.StatusBadRequest)
			s.reject(w, http.StatusBadRequest, 0, "bad request body: "+err.Error())
			return
		}
		if req.Source == "" {
			s.badRequests.Inc()
			finish(http.StatusBadRequest)
			s.reject(w, http.StatusBadRequest, 0, `missing "source"`)
			return
		}

		tenant := req.Tenant
		if tenant == "" {
			tenant = "default"
		}
		fe.Tenant = tenant
		if ok, retry := s.adm.take(tenant); !ok {
			s.rejected429.Inc()
			finish(http.StatusTooManyRequests)
			s.reject(w, http.StatusTooManyRequests, retry,
				fmt.Sprintf("tenant %q over admission rate", tenant))
			return
		}
		select {
		case s.inflight <- struct{}{}:
			s.inflightNow.Add(1)
			defer func() {
				<-s.inflight
				s.inflightNow.Add(-1)
			}()
		default:
			s.rejected429.Inc()
			finish(http.StatusTooManyRequests)
			s.reject(w, http.StatusTooManyRequests, time.Second, "server at in-flight capacity")
			return
		}

		s.requests.Inc()
		resp, code, errMsg := s.run(kind, &req, &fe)
		elapsed := time.Since(t0)
		s.latency.Observe(int64(elapsed))
		if code != http.StatusOK {
			s.badRequests.Inc()
			finish(code)
			s.reject(w, code, 0, errMsg)
			return
		}
		fe.Cached = resp.Cached
		fe.Verdict, fe.Fault = verdictOf(resp)
		resp.LatencyNS = int64(elapsed)
		finish(http.StatusOK)
		writeJSON(w, http.StatusOK, resp)
	})
}

// verdictOf summarizes a 200 response for the flight recorder.
func verdictOf(resp *Response) (verdict, faultClass string) {
	switch {
	case resp.Check != nil && resp.Check.Degraded:
		return "degraded", resp.Check.Fault
	case resp.Analyze != nil && resp.Analyze.Degraded:
		return "degraded", resp.Analyze.Fault
	case resp.Check != nil && resp.Check.Error != "":
		return "reject", ""
	default:
		return "ok", ""
	}
}

// cacheKey is the verdict-cache key: kind, source, and the canonical
// JSON of the analysis options (struct field order, so it is
// deterministic).
func cacheKey(kind, source string, a cliflags.Analysis) string {
	opts, _ := json.Marshal(a)
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(source))
	h.Write([]byte{0})
	h.Write(opts)
	return hex.EncodeToString(h.Sum(nil))
}

// deadline resolves the request deadline: the default when absent,
// clamped to the maximum either way.
func (s *Server) deadline(req *Request) time.Duration {
	d := time.Duration(req.Deadline)
	if d <= 0 {
		d = s.opts.DefaultDeadline
	}
	if d > s.opts.MaxDeadline {
		d = s.opts.MaxDeadline
	}
	return d
}

// run executes one admitted request. It returns the response (code
// 200), or a non-200 code and message. fe receives the fields only
// the run can know (shard retry counts).
func (s *Server) run(kind string, req *Request, fe *FlightEntry) (*Response, int, string) {
	resp := &Response{Kind: kind}

	// Parse errors are 400s — the client sent a program the language
	// does not contain — unlike analysis rejections (type errors,
	// warnings), which are successful analyses of valid programs.
	switch kind {
	case "core":
		if _, err := mix.Parse(req.Source); err != nil {
			return nil, http.StatusBadRequest, "parse: " + err.Error()
		}
	case "microc":
		if _, err := mix.ParseC(req.Source); err != nil {
			return nil, http.StatusBadRequest, "parse: " + err.Error()
		}
	}

	key := cacheKey(kind, req.Source, req.Analysis)
	cacheable := !req.Trace && !req.Metrics
	if cacheable {
		if e := s.resp.get(key); e != nil {
			s.cachedHits.Inc()
			resp.Cached = true
			resp.Check, resp.Analyze = e.check, e.analyze
			return resp, http.StatusOK, ""
		}
	}

	var reg *obs.Registry
	if req.Metrics {
		reg = obs.NewRegistry()
	}
	var tr *obs.Tracer
	if req.Trace {
		tr = obs.NewTracer(obs.TraceOptions{Deterministic: true})
	}

	switch kind {
	case "core":
		cfg := req.Analysis.MixConfig()
		cfg.Cache = s.cache
		cfg.Deadline = s.deadline(req)
		cfg.Metrics, cfg.Tracer = reg, tr
		if err := cfg.Validate(); err != nil {
			return nil, http.StatusBadRequest, err.Error()
		}
		var res mix.Result
		if s.opts.Shards > 0 {
			// The sharded path trades the daemon's warm caches for
			// process isolation; the request's deadline still binds each
			// worker's analysis. It always runs with a registry — the
			// request's own when it asked for metrics, a scratch one
			// otherwise — because the coordinator merges worker-side
			// counters into it, and those belong in the server's fleet
			// totals either way.
			sreg := reg
			if sreg == nil {
				sreg = obs.NewRegistry()
			}
			sreq := req.Analysis
			sreq.Deadline = cliflags.Duration(cfg.Deadline)
			var serr error
			res, serr = shard.ExploreCore(req.Source, sreq, shard.Options{
				Shards:  s.opts.Shards,
				Depth:   s.opts.ShardDepth,
				Metrics: sreg,
				Tracer:  tr,
			})
			if serr != nil {
				return nil, http.StatusBadRequest, serr.Error()
			}
			// Fold the run's counters — coordinator bookkeeping and the
			// worker registries it merged — into the server registry, so
			// /metrics scrapes and the final drain flush account sharded
			// work like in-process work.
			s.reg.Merge(sreg.Snapshot())
			fe.ShardRetries = sreg.Counter("shard.retries").Value()
		} else {
			res = mix.Check(req.Source, cfg)
		}
		cr := &CheckResult{
			Type:          res.Type,
			Reports:       res.Reports,
			Paths:         res.Paths,
			Merges:        res.Merges,
			SolverQueries: res.SolverQueries,
			MemoHits:      res.MemoHits,
			MemoMisses:    res.MemoMisses,
			QuickDecided:  res.QuickDecided,
			CexHits:       res.CexHits,
			Degraded:      res.Degraded,
			Fault:         res.Fault,
			FaultDetail:   res.FaultDetail,
		}
		if res.Err != nil {
			cr.Error = res.Err.Error()
		}
		resp.Check = cr
		if res.Degraded {
			s.degraded.Inc()
			resp.Retryable = retryable(res.Fault)
		} else if cacheable {
			s.resp.put(&respEntry{key: key, check: cr})
		}
	case "microc":
		cfg := req.Analysis.CConfig()
		cfg.Cache = s.cache
		if cfg.Summaries {
			// The shared store, not a per-request one: summaries computed
			// for one request answer every later request that analyzes
			// the same functions (and, with CacheDir, later processes).
			cfg.SummaryStore = s.sums
		}
		cfg.Deadline = s.deadline(req)
		cfg.Metrics, cfg.Tracer = reg, tr
		if err := cfg.Validate(); err != nil {
			return nil, http.StatusBadRequest, err.Error()
		}
		res, err := mix.AnalyzeC(req.Source, cfg)
		if err != nil {
			// Parse passed, so this is a program the analyzer cannot
			// handle (unbound entry, unsupported construct): still the
			// client's content.
			return nil, http.StatusBadRequest, err.Error()
		}
		ar := &AnalyzeResult{
			Warnings:       res.Warnings,
			Merges:         res.Merges,
			BlocksAnalyzed: res.BlocksAnalyzed,
			CacheHits:      res.CacheHits,
			FixpointIters:  res.FixpointIters,
			SolverQueries:  res.SolverQueries,
			MemoHits:       res.MemoHits,
			MemoMisses:     res.MemoMisses,
			QuickDecided:   res.QuickDecided,
			CexHits:        res.CexHits,
			Degraded:       res.Degraded,
			Fault:          res.Fault,
			FaultDetail:    res.FaultDetail,
		}
		resp.Analyze = ar
		if res.Degraded {
			s.degraded.Inc()
			resp.Retryable = retryable(res.Fault)
		} else if cacheable {
			s.resp.put(&respEntry{key: key, analyze: ar})
		}
	}

	if reg != nil {
		snap := reg.Snapshot()
		resp.Metrics = &snap
	}
	if tr != nil {
		resp.Trace = traceRows(tr)
	}
	return resp, http.StatusOK, ""
}

// retryable maps a Result.Fault class name back to the transiency
// hint. The facade reports fault classes as strings (their public
// form), so match on the parsed class.
func retryable(faultName string) bool {
	for _, c := range fault.Classes() {
		if c.String() == faultName {
			return c.Transient()
		}
	}
	return false
}

// traceRows renders a tracer's JSONL output as individual JSON rows.
func traceRows(tr *obs.Tracer) []json.RawMessage {
	var buf jsonlBuffer
	if err := tr.WriteJSONL(&buf); err != nil {
		return nil
	}
	return buf.rows
}

// jsonlBuffer splits written JSONL bytes into rows, tolerating writes
// that do not align with line boundaries.
type jsonlBuffer struct {
	rows []json.RawMessage
	cur  []byte
}

func (b *jsonlBuffer) Write(p []byte) (int, error) {
	for _, c := range p {
		if c == '\n' {
			if len(b.cur) > 0 {
				row := make(json.RawMessage, len(b.cur))
				copy(row, b.cur)
				b.rows = append(b.rows, row)
				b.cur = b.cur[:0]
			}
			continue
		}
		b.cur = append(b.cur, c)
	}
	return len(p), nil
}
