package serve

import (
	"encoding/json"
	"io"
	"sync"
)

// FlightEntry is one request's summary in the flight recorder: enough
// to reconstruct what the daemon was doing in its last moments (or
// minutes) without a tracing run — who asked, what came back, how
// long it took, and what the fault/retry machinery did along the way.
type FlightEntry struct {
	// TNs is the request's arrival time (unix nanoseconds).
	TNs int64 `json:"t_unix_ns"`
	// Tenant is the admission bucket ("" when the request never got as
	// far as naming one — e.g. an undecodable body).
	Tenant string `json:"tenant,omitempty"`
	// Kind is "core" or "microc".
	Kind string `json:"kind"`
	// Status is the HTTP status answered.
	Status int `json:"status"`
	// Verdict summarizes a 200: "ok", "reject" (the analysis rejected
	// the program), or "degraded". Empty on non-200s — the status
	// carries the story there.
	Verdict string `json:"verdict,omitempty"`
	// Fault is the fault class of a degraded verdict.
	Fault string `json:"fault,omitempty"`
	// Cached reports a verdict-cache hit.
	Cached bool `json:"cached,omitempty"`
	// ShardRetries counts coordinator retries during a sharded check.
	ShardRetries int64 `json:"shard_retries,omitempty"`
	// LatencyNS is the server-side processing time.
	LatencyNS int64 `json:"latency_ns"`
}

// defaultFlightSize is the default ring capacity: at a sustained
// 100 req/s it holds the last ~10 seconds, and it costs ~100KB.
const defaultFlightSize = 1024

// flightRecorder is a bounded, always-on ring of recent request
// summaries. Recording is one mutex-protected slot write — cheap
// enough to stay on for every request — and the dump walks the ring
// oldest-first. A nil recorder is inert.
type flightRecorder struct {
	mu  sync.Mutex
	buf []FlightEntry
	n   int64 // total entries ever recorded
}

// newFlightRecorder sizes a recorder: 0 means defaultFlightSize,
// negative disables (returns nil).
func newFlightRecorder(size int) *flightRecorder {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = defaultFlightSize
	}
	return &flightRecorder{buf: make([]FlightEntry, size)}
}

func (f *flightRecorder) record(e FlightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.n%int64(len(f.buf))] = e
	f.n++
	f.mu.Unlock()
}

// WriteJSONL dumps the ring oldest-first, one JSON object per line —
// the GET /debug/flight payload and the SIGTERM final dump.
func (f *flightRecorder) WriteJSONL(w io.Writer) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	var entries []FlightEntry
	if f.n <= int64(len(f.buf)) {
		entries = append(entries, f.buf[:f.n]...)
	} else {
		idx := f.n % int64(len(f.buf))
		entries = append(entries, f.buf[idx:]...)
		entries = append(entries, f.buf[:idx]...)
	}
	f.mu.Unlock()
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
