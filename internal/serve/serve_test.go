package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mix/internal/corpus"
	"mix/internal/obs"
)

func newTestServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decode(t *testing.T, b []byte) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("decode %s: %v", b, err)
	}
	return r
}

// ladderRequest builds the core-language ladder-n request used across
// the tests (merge off, so the 2^n paths are really explored).
func ladderRequest(n int) Request {
	src, envPairs := corpus.Ladder(n)
	env := map[string]string{}
	for _, p := range envPairs {
		env[p[0]] = p[1]
	}
	var req Request
	req.Source = src
	req.Symbolic = true
	req.Env = env
	req.Workers = 2
	req.Merge = "off"
	return req
}

// memoRequest is a core request whose report-feasibility checks carry
// two-variable inequalities, so it actually exercises the shared
// solver memo (the ladder's boolean guards never reach it).
func memoRequest() Request {
	var req Request
	req.Source = `{s if x < y then (if y < x then {t 1 + true t} else 1)
		else (if y < x then 2 else (if x < y then {t 1 + true t} else 3)) s}`
	req.Symbolic = true
	req.Env = map[string]string{"x": "int", "y": "int"}
	req.Workers = 2
	req.Merge = "off"
	return req
}

func vsftpdRequest(nFuncs int) Request {
	var req Request
	req.Source = corpus.SyntheticVsftpd(nFuncs, 2)
	req.Workers = 2
	req.Merge = "joins"
	req.MergeCap = 8
	req.Entry = "main"
	return req
}

// verdict reduces a response to its verdict-bearing fields — the part
// that must be byte-identical warm vs cold. Cache/timing statistics
// legitimately differ.
func verdict(r Response) string {
	if r.Check != nil {
		return fmt.Sprintf("core type=%q err=%q reports=%q paths=%d merges=%d degraded=%v fault=%q",
			r.Check.Type, r.Check.Error, r.Check.Reports, r.Check.Paths,
			r.Check.Merges, r.Check.Degraded, r.Check.Fault)
	}
	if r.Analyze != nil {
		return fmt.Sprintf("microc warnings=%q merges=%d blocks=%d degraded=%v fault=%q",
			r.Analyze.Warnings, r.Analyze.Merges, r.Analyze.BlocksAnalyzed,
			r.Analyze.Degraded, r.Analyze.Fault)
	}
	return "empty"
}

// TestCheckAndAnalyzeBasic pins the happy paths of both endpoints.
func TestCheckAndAnalyzeBasic(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp, body := post(t, ts.URL+"/check", ladderRequest(4))
	if resp.StatusCode != 200 {
		t.Fatalf("/check = %d: %s", resp.StatusCode, body)
	}
	r := decode(t, body)
	if r.Kind != "core" || r.Check == nil || r.Check.Type != "int" || r.Check.Paths != 16 {
		t.Fatalf("check response: %s", body)
	}

	resp, body = post(t, ts.URL+"/analyze", vsftpdRequest(4))
	if resp.StatusCode != 200 {
		t.Fatalf("/analyze = %d: %s", resp.StatusCode, body)
	}
	r = decode(t, body)
	if r.Kind != "microc" || r.Analyze == nil || r.Analyze.BlocksAnalyzed == 0 {
		t.Fatalf("analyze response: %s", body)
	}
}

// TestWarmColdDifferential is the acceptance differential: a mixed
// corpus served to concurrent clients against a warm server yields
// verdicts byte-identical to cold single-request servers. Run under
// -race this also hammers the shared caches.
func TestWarmColdDifferential(t *testing.T) {
	reqs := map[string]struct {
		path string
		req  Request
	}{
		"ladder8": {"/check", ladderRequest(8)},
		"memo":    {"/check", memoRequest()},
		"vsftpd6": {"/analyze", vsftpdRequest(6)},
		"mini": {"/analyze", func() Request {
			var r Request
			r.Source = corpus.VsftpdMini.Source
			r.Entry = corpus.VsftpdMini.Entry
			r.Workers = 2
			r.Merge = "joins"
			r.MergeCap = 8
			return r
		}()},
	}

	// Cold references: each request on its own fresh server.
	cold := map[string]string{}
	for name, rc := range reqs {
		_, ts := newTestServer(t, Options{})
		resp, body := post(t, ts.URL+rc.path, rc.req)
		if resp.StatusCode != 200 {
			t.Fatalf("cold %s = %d: %s", name, resp.StatusCode, body)
		}
		cold[name] = verdict(decode(t, body))
		ts.Close()
	}

	// Warm server: every client mixes all corpus entries. The in-flight
	// cap is set above the client count (the default 4×GOMAXPROCS can
	// be below it on small machines, and this test is about cache
	// correctness, not admission).
	srv, ts := newTestServer(t, Options{MaxConcurrent: 16})
	names := make([]string, 0, len(reqs))
	for name := range reqs {
		names = append(names, name)
	}
	const clients, iters = 6, 8
	var wg sync.WaitGroup
	errs := make(chan string, clients*iters)
	var cachedSeen sync.Map
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := names[(c+i)%len(names)]
				rc := reqs[name]
				resp, body := post(t, ts.URL+rc.path, rc.req)
				if resp.StatusCode != 200 {
					errs <- fmt.Sprintf("warm %s = %d: %s", name, resp.StatusCode, body)
					return
				}
				r := decode(t, body)
				if got := verdict(r); got != cold[name] {
					errs <- fmt.Sprintf("%s diverged:\nwarm %s\ncold %s", name, got, cold[name])
					return
				}
				if r.Cached {
					cachedSeen.Store(name, true)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	anyCached := false
	cachedSeen.Range(func(_, _ any) bool { anyCached = true; return false })
	if !anyCached {
		t.Fatal("no warm request was answered from the verdict cache")
	}
	if cs := srv.Cache().Stats(); cs.MemoHits == 0 {
		t.Fatalf("solver cache stats = %+v, want cross-request memo hits", cs)
	}
}

// TestDeadlineExpiryDegraded200 pins the deadline contract: expiry is
// a degraded verdict with a transient-fault retry hint, transported as
// a 200 — never an error or a dropped connection — and it is not
// cached, so a retry really re-runs.
func TestDeadlineExpiryDegraded200(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := ladderRequest(12) // ~100ms of exploration
	req.Deadline = 1_000_000 // 1ms: expires mid-run

	resp, body := post(t, ts.URL+"/check", req)
	if resp.StatusCode != 200 {
		t.Fatalf("deadline expiry = %d, want 200: %s", resp.StatusCode, body)
	}
	r := decode(t, body)
	if r.Check == nil || !r.Check.Degraded {
		t.Fatalf("want degraded verdict: %s", body)
	}
	if r.Check.Fault != "timeout" && r.Check.Fault != "canceled" {
		t.Fatalf("fault = %q, want a deadline class", r.Check.Fault)
	}
	if !r.Retryable {
		t.Fatalf("deadline expiry should be retryable: %s", body)
	}

	// The degraded verdict must not have been cached: the same request
	// with a workable deadline completes.
	req.Deadline = 0
	resp, body = post(t, ts.URL+"/check", req)
	r = decode(t, body)
	if resp.StatusCode != 200 || r.Check == nil || r.Check.Degraded || r.Cached || r.Check.Type != "int" {
		t.Fatalf("retry after expiry: %d %s", resp.StatusCode, body)
	}
}

// TestRateLimit429 pins token-bucket admission: an over-budget tenant
// gets 429 with Retry-After while another tenant is still admitted.
func TestRateLimit429(t *testing.T) {
	now := time.Unix(1000, 0)
	_, ts := newTestServer(t, Options{
		RatePerSec: 1, Burst: 2,
		Now: func() time.Time { return now }, // frozen: no refill
	})
	req := ladderRequest(2)
	req.Tenant = "greedy"

	for i := 0; i < 2; i++ {
		if resp, body := post(t, ts.URL+"/check", req); resp.StatusCode != 200 {
			t.Fatalf("burst request %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := post(t, ts.URL+"/check", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.RetryAfterSec < 1 {
		t.Fatalf("429 body = %s", body)
	}

	// Fairness: a different tenant has its own bucket.
	other := req
	other.Tenant = "patient"
	if resp, body := post(t, ts.URL+"/check", other); resp.StatusCode != 200 {
		t.Fatalf("other tenant = %d, want 200 (per-tenant fairness): %s", resp.StatusCode, body)
	}
}

// TestDrainZeroDrop pins SIGTERM semantics: in-flight requests finish
// with real responses (zero dropped), new requests get 503, and
// healthz flips to draining.
func TestDrainZeroDrop(t *testing.T) {
	srv, ts := newTestServer(t, Options{MaxConcurrent: 8})

	const inflight = 4
	var wg sync.WaitGroup
	codes := make([]int, inflight)
	verdicts := make([]Response, inflight)
	for i := 0; i < inflight; i++ {
		// Distinct slow programs (~100ms each), so none is answered
		// from the verdict cache and all are genuinely running when
		// Drain fires.
		var slow Request
		slow.Source = corpus.SyntheticVsftpd(18+i, 3)
		slow.Workers = 2
		slow.Merge = "joins"
		slow.MergeCap = 8
		slow.Entry = "main"
		wg.Add(1)
		go func(i int, slow Request) {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/analyze", slow)
			codes[i] = resp.StatusCode
			if resp.StatusCode == 200 {
				verdicts[i] = decode(t, body)
			}
		}(i, slow)
	}
	// Wait until all of them are admitted and running.
	for deadline := time.Now().Add(10 * time.Second); srv.inflightNow.Load() < inflight; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests admitted", srv.inflightNow.Load(), inflight)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 200 || verdicts[i].Analyze == nil {
			t.Fatalf("in-flight request %d dropped during drain: code=%d", i, code)
		}
	}

	resp, body := post(t, ts.URL+"/analyze", vsftpdRequest(4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain = %d, want 503: %s", resp.StatusCode, body)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d, want 503", hr.StatusCode)
	}
}

// TestBadRequests pins the 400 surface: malformed JSON, unknown
// fields, missing source, parse errors, and facade validation errors
// all come back as descriptive 400s.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, path, body, want string
	}{
		{"malformed", "/check", `{`, "bad request body"},
		{"unknown field", "/check", `{"source":"1","bogus":true}`, "bad request body"},
		{"missing source", "/check", `{"workers":1}`, `missing "source"`},
		{"core parse error", "/check", `{"source":"let let"}`, "parse"},
		{"microc parse error", "/analyze", `{"source":"int f("}`, "parse"},
		{"bad merge", "/check", `{"source":"1 + 2","merge":"sometimes"}`, "bad Merge mode"},
		{"orphan merge cap", "/analyze", `{"source":"int main() { return 0; }","merge_cap":4}`, "without a Merge mode"},
		{"negative workers", "/check", `{"source":"1 + 2","workers":-1}`, "negative Workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400: %s", resp.StatusCode, buf.Bytes())
			}
			var eb errorBody
			if err := json.Unmarshal(buf.Bytes(), &eb); err != nil || !strings.Contains(eb.Error, tc.want) {
				t.Fatalf("error = %s, want substring %q", buf.Bytes(), tc.want)
			}
		})
	}
}

// TestFlushEndpoint pins /flush: both caches drop, so the next
// identical request is a verdict-cache miss.
func TestFlushEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	req := memoRequest()

	post(t, ts.URL+"/check", req)
	_, body := post(t, ts.URL+"/check", req)
	if r := decode(t, body); !r.Cached {
		t.Fatalf("second identical request not cached: %s", body)
	}

	resp, err := http.Post(ts.URL+"/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/flush = %d", resp.StatusCode)
	}
	if cs := srv.Cache().Stats(); cs.MemoEntries != 0 || cs.Flushes == 0 {
		t.Fatalf("solver cache after flush: %+v", cs)
	}

	_, body = post(t, ts.URL+"/check", req)
	if r := decode(t, body); r.Cached {
		t.Fatalf("request after flush still cached: %s", body)
	}
}

// TestPerRequestMetricsAndTrace pins the response shaping extras: a
// request asking for metrics/trace gets the run's own snapshot and
// deterministic trace rows, and bypasses the verdict cache.
func TestPerRequestMetricsAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := memoRequest()
	req.Metrics = true
	req.Trace = true

	for i := 0; i < 2; i++ {
		_, body := post(t, ts.URL+"/check", req)
		r := decode(t, body)
		if r.Cached {
			t.Fatalf("traced request %d must bypass the verdict cache", i)
		}
		if r.Metrics == nil || r.Metrics.SchemaVersion != obs.MetricsSchemaVersion || len(r.Metrics.Metrics) == 0 {
			t.Fatalf("metrics missing: %s", body)
		}
		if len(r.Trace) == 0 {
			t.Fatalf("trace missing: %s", body)
		}
		var ev map[string]any
		if err := json.Unmarshal(r.Trace[0], &ev); err != nil {
			t.Fatalf("trace row not JSON: %v", err)
		}
	}
}

// summariesRequest is a MicroC request with a summarizable helper
// called twice from a symbolic entry, with summaries enabled — the
// shape that exercises the server's shared summary store.
func summariesRequest() Request {
	var req Request
	req.Source = `
int h(int a, int b) {
  if (a < b) { return a + 1; }
  return b - 1;
}
int entry(int x, int y) MIX(symbolic) {
  int r = h(x, y);
  int s = h(r, x);
  return r + s;
}
`
	req.Entry = "entry"
	req.Merge = "joins"
	req.MergeCap = 8
	req.Summaries = true
	return req
}

// TestSummaryStoreSharedAndFlushed pins the daemon's summary-store
// lifecycle: summaries computed for one request answer later requests
// from memory, POST /flush drops that memory (disk survives), and the
// verdicts never change.
func TestSummaryStoreSharedAndFlushed(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Options{CacheDir: dir})
	req := summariesRequest()

	_, body := post(t, ts.URL+"/analyze", req)
	cold := decode(t, body)
	if cold.Analyze == nil {
		t.Fatalf("analyze failed: %s", body)
	}
	st := srv.Summaries().Stats()
	if st.Computed == 0 || st.Entries == 0 {
		t.Fatalf("summaries request computed nothing: %+v", st)
	}

	// The summary counters surface on the /metrics scrape.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.MetricsSnapshot
	err = json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]int64{}
	for _, m := range snap.Metrics {
		vals[m.Name] = m.Value
	}
	if vals["serve.summaries.computed"] == 0 || vals["serve.summaries.entries"] == 0 {
		t.Fatalf("summary gauges missing from /metrics: %v", vals)
	}

	// Flush drops the in-memory tier only; the next run (a verdict-cache
	// miss, since /flush dropped that too) reloads summaries from disk.
	resp, err := http.Post(ts.URL+"/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := srv.Summaries().Stats(); st.Entries != 0 {
		t.Fatalf("flush left %d summary entries in memory", st.Entries)
	}

	_, body = post(t, ts.URL+"/analyze", req)
	warm := decode(t, body)
	if warm.Cached {
		t.Fatal("post-flush request must not be a verdict-cache hit")
	}
	if verdict(warm) != verdict(cold) {
		t.Fatalf("warm verdict differs:\n got %s\nwant %s", verdict(warm), verdict(cold))
	}
	warmStats := srv.Summaries().Stats()
	if warmStats.DiskHits == 0 {
		t.Fatalf("post-flush run did not reload summaries from disk: %+v", warmStats)
	}
	if warmStats.Computed != st.Computed {
		t.Fatalf("post-flush run recomputed summaries: %+v, want only the cold run's %d", warmStats, st.Computed)
	}
}

// TestWarmStartFromDisk pins the restart story: a fresh server on the
// same cache directory answers a repeat analysis without recomputing
// any summaries, with a byte-identical verdict.
func TestWarmStartFromDisk(t *testing.T) {
	dir := t.TempDir()
	req := summariesRequest()

	s1, ts1 := newTestServer(t, Options{CacheDir: dir})
	_, body := post(t, ts1.URL+"/analyze", req)
	cold := decode(t, body)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2, ts2 := newTestServer(t, Options{CacheDir: dir})
	_, body = post(t, ts2.URL+"/analyze", req)
	warm := decode(t, body)
	if warm.Cached {
		t.Fatal("restarted server has an empty verdict cache; hit is impossible")
	}
	if verdict(warm) != verdict(cold) {
		t.Fatalf("restart changed the verdict:\n got %s\nwant %s", verdict(warm), verdict(cold))
	}
	st := s2.Summaries().Stats()
	if st.Computed != 0 || st.DiskHits == 0 {
		t.Fatalf("restarted server stats = %+v, want all summaries from disk", st)
	}
}

// TestMetricsEndpoint pins the /metrics scrape: the obs JSON schema
// with the server counters and refreshed cache gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post(t, ts.URL+"/check", memoRequest())
	post(t, ts.URL+"/check", memoRequest())

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]int64{}
	for _, m := range snap.Metrics {
		vals[m.Name] = m.Value
	}
	if vals["serve.requests"] != 2 || vals["serve.responses.cached"] != 1 {
		t.Fatalf("server counters: %v", vals)
	}
	if vals["serve.respcache.entries"] != 1 || vals["serve.solvercache.memo_entries"] == 0 {
		t.Fatalf("cache gauges not refreshed on scrape: %v", vals)
	}
}
