package serve

import (
	"math"
	"sync"
	"time"
)

// tenantBuckets is token-bucket admission control with per-tenant
// fairness: every tenant gets its own bucket at the same rate, so one
// tenant saturating its budget cannot starve the others — the
// guarantee a shared-bucket design cannot give. Buckets refill lazily
// on access (no background goroutine) and the tenant map is bounded:
// at maxTenants the least-recently-active bucket is evicted, which for
// a full bucket is indistinguishable from a fresh one.
type tenantBuckets struct {
	mu    sync.Mutex
	rate  float64 // tokens per second; <= 0 disables admission control
	burst float64 // bucket capacity
	now   func() time.Time
	m     map[string]*bucket
}

// maxTenants bounds the tenant map. Admission state is approximate by
// design; the bound only exists so an adversarial tenant-per-request
// client cannot grow the map without limit.
const maxTenants = 4096

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantBuckets(rate float64, burst int, now func() time.Time) *tenantBuckets {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, rate)
	}
	return &tenantBuckets{rate: rate, burst: b, now: now, m: map[string]*bucket{}}
}

// take spends one token from tenant's bucket. When the bucket is
// empty it reports ok=false and how long until the next token exists —
// the Retry-After value.
func (t *tenantBuckets) take(tenant string) (ok bool, retryAfter time.Duration) {
	if t.rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	b := t.m[tenant]
	if b == nil {
		if len(t.m) >= maxTenants {
			t.evictStalest(now)
		}
		b = &bucket{tokens: t.burst, last: now}
		t.m[tenant] = b
	} else {
		b.tokens = math.Min(t.burst, b.tokens+t.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / t.rate * float64(time.Second))
}

// evictStalest drops the bucket idle the longest (caller holds mu).
// Idle buckets have refilled toward full, so recreating one later
// loses nothing a well-behaved tenant would notice.
func (t *tenantBuckets) evictStalest(now time.Time) {
	var stalest string
	var age time.Duration = -1
	for k, b := range t.m {
		if d := now.Sub(b.last); d > age {
			stalest, age = k, d
		}
	}
	delete(t.m, stalest)
}
