package pointer

import (
	"testing"

	"mix/internal/microc"
)

func locNames(locs []Loc) map[string]bool {
	out := map[string]bool{}
	for _, l := range locs {
		out[l.String()] = true
	}
	return out
}

func TestAddressOf(t *testing.T) {
	prog := mustParse(`
int g;
int *p;
void f(void) { p = &g; }
`)
	a := Analyze(prog)
	p, _ := prog.Global("p")
	names := locNames(a.PointsToVar(p))
	if !names["g"] {
		t.Fatalf("p should point to g, got %v", names)
	}
}

func TestCopyChains(t *testing.T) {
	prog := mustParse(`
int g;
int *p;
int *q;
int *r;
void f(void) { p = &g; q = p; r = q; }
`)
	a := Analyze(prog)
	r, _ := prog.Global("r")
	if !locNames(a.PointsToVar(r))["g"] {
		t.Fatal("r should reach g through copies")
	}
}

func TestLoadStore(t *testing.T) {
	prog := mustParse(`
int g;
int h;
int *a;
int *b;
int **pp;
void f(void) {
  a = &g;
  pp = &a;
  *pp = &h;   // store: a may also point to h
  b = *pp;    // load: b points to whatever a points to
}
`)
	an := Analyze(prog)
	a, _ := prog.Global("a")
	b, _ := prog.Global("b")
	aN := locNames(an.PointsToVar(a))
	bN := locNames(an.PointsToVar(b))
	if !aN["g"] || !aN["h"] {
		t.Fatalf("a should point to g and h, got %v", aN)
	}
	if !bN["g"] || !bN["h"] {
		t.Fatalf("b should point to g and h, got %v", bN)
	}
}

func TestMallocSites(t *testing.T) {
	prog := mustParse(`
int *p;
int *q;
void f(void) { p = malloc(sizeof(int)); q = malloc(sizeof(int)); }
`)
	a := Analyze(prog)
	p, _ := prog.Global("p")
	q, _ := prog.Global("q")
	pN := a.PointsToVar(p)
	qN := a.PointsToVar(q)
	if len(pN) != 1 || len(qN) != 1 {
		t.Fatalf("each should have one site: %v %v", pN, qN)
	}
	if pN[0].String() == qN[0].String() {
		t.Fatal("distinct malloc sites must be distinct locations")
	}
}

func TestFieldBased(t *testing.T) {
	prog := mustParse(`
struct s { int *f; };
int g;
int *out;
void store(struct s *x) { x->f = &g; }
void loadf(struct s *y) { out = y->f; }
`)
	a := Analyze(prog)
	out, _ := prog.Global("out")
	if !locNames(a.PointsToVar(out))["g"] {
		t.Fatal("field-based analysis should connect store and load through struct s.f")
	}
}

func TestCallBinding(t *testing.T) {
	prog := mustParse(`
int g;
int *id(int *x) { return x; }
int *p;
void f(void) { p = id(&g); }
`)
	a := Analyze(prog)
	p, _ := prog.Global("p")
	if !locNames(a.PointsToVar(p))["g"] {
		t.Fatal("return flow through id lost")
	}
}

func TestContextInsensitiveConflation(t *testing.T) {
	// The paper's Section 4.6 complaint, reproduced: two calls to id
	// conflate their arguments.
	prog := mustParse(`
int g;
int h;
int *id(int *x) { return x; }
int *p;
int *q;
void f(void) { p = id(&g); q = id(&h); }
`)
	a := Analyze(prog)
	p, _ := prog.Global("p")
	names := locNames(a.PointsToVar(p))
	if !names["g"] || !names["h"] {
		t.Fatalf("context-insensitive analysis must conflate: got %v", names)
	}
}

func TestFunctionPointerTargets(t *testing.T) {
	prog := mustParse(`
fnptr cb;
int fired;
void handler(void) { fired = 1; }
void other(void) { fired = 2; }
void install(void) { cb = handler; }
void fire(void) { (*cb)(); }
`)
	a := Analyze(prog)
	fire, _ := prog.Func("fire")
	call := fire.Body.Stmts[0].(*microc.ExprStmt).X.(*microc.Call)
	targets := a.CallTargets(call)
	if len(targets) != 1 || targets[0].Name != "handler" {
		t.Fatalf("targets = %v", targets)
	}
}

func TestIndirectCallArgFlow(t *testing.T) {
	prog := mustParse(`
fnptr cb;
int g;
int *captured;
void take(int *x) { captured = x; }
void install(void) { cb = take; }
void fire(void) { cb(&g); }
`)
	a := Analyze(prog)
	captured, _ := prog.Global("captured")
	if !locNames(a.PointsToVar(captured))["g"] {
		t.Fatal("argument flow through function pointer lost")
	}
}

func TestMayAlias(t *testing.T) {
	prog := mustParse(`
int g;
int h;
int *p;
int *q;
int *r;
void f(void) { p = &g; q = &g; r = &h; }
`)
	a := Analyze(prog)
	f, _ := prog.Func("f")
	// Build lvalue exprs *p, *q, *r via parsing a probe function is
	// overkill; instead compare variables' pointees through LValueLocs
	// on synthetic derefs is complex — use PointsToVar overlap.
	p, _ := prog.Global("p")
	q, _ := prog.Global("q")
	r, _ := prog.Global("r")
	overlap := func(a1, a2 []Loc) bool {
		for _, x := range a1 {
			for _, y := range a2 {
				if x.String() == y.String() {
					return true
				}
			}
		}
		return false
	}
	if !overlap(a.PointsToVar(p), a.PointsToVar(q)) {
		t.Fatal("p and q should may-alias (both &g)")
	}
	if overlap(a.PointsToVar(p), a.PointsToVar(r)) {
		t.Fatal("p and r should not alias")
	}
	_ = f
}

func TestLValueLocsDeref(t *testing.T) {
	prog := mustParse(`
int g;
int *p;
void f(void) { p = &g; *p = 3; }
`)
	a := Analyze(prog)
	f, _ := prog.Func("f")
	asg := f.Body.Stmts[1].(*microc.ExprStmt).X.(*microc.Assign)
	locs := a.LValueLocs(asg.LHS)
	if len(locs) != 1 || locs[0].String() != "g" {
		t.Fatalf("LValueLocs(*p) = %v", locs)
	}
}

func TestGlobalInitializerFlow(t *testing.T) {
	prog := mustParse(`
int g;
int *p = &g;
int *q = p;
`)
	a := Analyze(prog)
	q, _ := prog.Global("q")
	if !locNames(a.PointsToVar(q))["g"] {
		t.Fatal("global initializer flow lost")
	}
}

// mustParse parses a MicroC test fixture, panicking on error; the
// library itself reports parse errors through the normal return path,
// fixtures are expected to be valid.
func mustParse(src string) *microc.Program {
	prog, err := microc.Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
