// Package pointer implements an Andersen-style, inclusion-based,
// context-insensitive, field-based may points-to analysis for MicroC.
// It stands in for CIL's built-in pointer analysis in the paper's
// MIXY prototype: MIXY uses it to restore aliasing relationships when
// switching from symbolic to typed blocks, to lazily initialize
// symbolic memory, and to resolve calls through function pointers
// (Section 4.2).
//
// Being context-insensitive and field-based, it conflates call sites
// and struct instances exactly like the analysis the paper complains
// about in Section 4.6 — reproducing those limitations is part of the
// reproduction.
package pointer

import (
	"fmt"
	"sort"
	"sync"

	"mix/internal/microc"
)

// LocKind classifies abstract locations.
type LocKind int

const (
	// VarLoc is a named variable (global, local, or parameter).
	VarLoc LocKind = iota
	// FieldLoc is a struct field, conflated per (struct, field).
	FieldLoc
	// MallocLoc is a heap allocation site.
	MallocLoc
	// FuncLoc is a function (for function pointers).
	FuncLoc
	// retLoc is the return-value pseudo-variable of a function.
	retLoc
	// tempLoc is an analysis-internal temporary.
	tempLoc
)

// Loc is an abstract memory location.
type Loc struct {
	Kind   LocKind
	Var    *microc.VarDecl // VarLoc
	Struct string          // FieldLoc
	Field  string          // FieldLoc
	Site   int             // MallocLoc
	Func   *microc.FuncDef // FuncLoc, retLoc
	id     int
}

func (l Loc) String() string {
	switch l.Kind {
	case VarLoc:
		if l.Var.Owner != "" {
			return l.Var.Owner + "::" + l.Var.Name
		}
		return l.Var.Name
	case FieldLoc:
		return "struct " + l.Struct + "." + l.Field
	case MallocLoc:
		return fmt.Sprintf("malloc#%d", l.Site)
	case FuncLoc:
		return "&" + l.Func.Name
	case retLoc:
		return l.Func.Name + "::<ret>"
	}
	return fmt.Sprintf("tmp%d", l.id)
}

// Analysis holds solved points-to results.
type Analysis struct {
	// mu guards the query API: node interning is lazy, so lookups for
	// never-generated entities mutate the tables, and parallel symbolic
	// paths query concurrently.
	mu    sync.Mutex
	prog  *microc.Program
	locs  []Loc
	byKey map[string]int

	pts   []map[int]bool
	succs []map[int]bool // copy edges
	loads []map[int]bool // dst ⊇ *n
	strs  []map[int]bool // *n ⊇ src

	// indirect call sites discovered during constraint generation.
	indirect []indirectCall
	// resolved direct + indirect call targets per call node.
	callTargets map[*microc.Call][]*microc.FuncDef
	// exprNode memoizes the node of resolved expressions.
	exprNode  map[microc.Expr]int
	tempCount int
}

type indirectCall struct {
	call *microc.Call
	fun  int
	args []int
	res  int
}

// Analyze runs the analysis to fixpoint over the whole program.
func Analyze(prog *microc.Program) *Analysis {
	a := &Analysis{
		prog:        prog,
		byKey:       map[string]int{},
		callTargets: map[*microc.Call][]*microc.FuncDef{},
		exprNode:    map[microc.Expr]int{},
	}
	a.generate()
	a.solve()
	// Indirect calls may reveal new argument/return flows; iterate
	// until the set of resolved targets stabilizes.
	for a.bindIndirect() {
		a.solve()
	}
	return a
}

// node interning ------------------------------------------------------

func (a *Analysis) intern(key string, mk func(id int) Loc) int {
	if id, ok := a.byKey[key]; ok {
		return id
	}
	id := len(a.locs)
	a.byKey[key] = id
	a.locs = append(a.locs, mk(id))
	a.pts = append(a.pts, map[int]bool{})
	a.succs = append(a.succs, map[int]bool{})
	a.loads = append(a.loads, map[int]bool{})
	a.strs = append(a.strs, map[int]bool{})
	return id
}

func (a *Analysis) varNode(d *microc.VarDecl) int {
	return a.intern(fmt.Sprintf("v:%p", d), func(id int) Loc {
		return Loc{Kind: VarLoc, Var: d, id: id}
	})
}

func (a *Analysis) fieldNode(structName, field string) int {
	return a.intern("f:"+structName+"."+field, func(id int) Loc {
		return Loc{Kind: FieldLoc, Struct: structName, Field: field, id: id}
	})
}

func (a *Analysis) mallocNode(site int) int {
	return a.intern(fmt.Sprintf("m:%d", site), func(id int) Loc {
		return Loc{Kind: MallocLoc, Site: site, id: id}
	})
}

func (a *Analysis) funcNode(f *microc.FuncDef) int {
	return a.intern("fn:"+f.Name, func(id int) Loc {
		return Loc{Kind: FuncLoc, Func: f, id: id}
	})
}

func (a *Analysis) retNode(f *microc.FuncDef) int {
	return a.intern("r:"+f.Name, func(id int) Loc {
		return Loc{Kind: retLoc, Func: f, id: id}
	})
}

func (a *Analysis) tempNode() int {
	a.tempCount++
	return a.intern(fmt.Sprintf("t:%d", a.tempCount), func(id int) Loc {
		return Loc{Kind: tempLoc, id: id}
	})
}

// constraint primitives ------------------------------------------------

func (a *Analysis) addrOf(dst, loc int) { a.pts[dst][loc] = true }
func (a *Analysis) copyEdge(src, dst int) {
	if src >= 0 && dst >= 0 && src != dst {
		a.succs[src][dst] = true
	}
}
func (a *Analysis) load(src, dst int) { // dst ⊇ *src
	if src >= 0 && dst >= 0 {
		a.loads[src][dst] = true
	}
}
func (a *Analysis) store(dst, src int) { // *dst ⊇ src
	if src >= 0 && dst >= 0 {
		a.strs[dst][src] = true
	}
}

// constraint generation ------------------------------------------------

func (a *Analysis) generate() {
	for _, g := range a.prog.Globals {
		if g.Init != nil {
			n := a.rvalue(g.Init)
			a.copyEdge(n, a.varNode(g))
		} else {
			a.varNode(g)
		}
	}
	for _, f := range a.prog.Funcs {
		for _, p := range f.Params {
			a.varNode(p)
		}
		if f.Body != nil {
			a.stmt(f, f.Body)
		}
	}
}

func (a *Analysis) stmt(fn *microc.FuncDef, s microc.Stmt) {
	switch s := s.(type) {
	case *microc.BlockStmt:
		for _, inner := range s.Stmts {
			a.stmt(fn, inner)
		}
	case *microc.DeclStmt:
		n := a.varNode(s.Decl)
		if s.Decl.Init != nil {
			a.copyEdge(a.rvalue(s.Decl.Init), n)
		}
	case *microc.ExprStmt:
		a.rvalue(s.X)
	case *microc.IfStmt:
		a.rvalue(s.Cond)
		a.stmt(fn, s.Then)
		if s.Else != nil {
			a.stmt(fn, s.Else)
		}
	case *microc.WhileStmt:
		a.rvalue(s.Cond)
		a.stmt(fn, s.Body)
	case *microc.ReturnStmt:
		if s.X != nil {
			a.copyEdge(a.rvalue(s.X), a.retNode(fn))
		}
	}
}

// rvalue generates constraints for e and returns the node holding its
// value, or -1 for non-pointer values.
func (a *Analysis) rvalue(e microc.Expr) int {
	switch e := e.(type) {
	case *microc.IntLit, *microc.NullLit:
		return -1
	case *microc.VarRef:
		switch ref := e.Ref.(type) {
		case *microc.VarDecl:
			return a.varNode(ref)
		case *microc.FuncDef:
			t := a.tempNode()
			a.addrOf(t, a.funcNode(ref))
			return t
		}
		return -1
	case *microc.Unary:
		switch e.Op {
		case microc.OpDeref:
			src := a.rvalue(e.X)
			if src < 0 {
				return -1
			}
			t := a.tempNode()
			a.load(src, t)
			a.exprNode[e] = t
			return t
		case microc.OpAddr:
			// &*p is p.
			if u, ok := e.X.(*microc.Unary); ok && u.Op == microc.OpDeref {
				return a.rvalue(u.X)
			}
			t := a.tempNode()
			for _, l := range a.lvalueNodes(e.X) {
				a.addrOf(t, l)
			}
			return t
		default:
			a.rvalue(e.X)
			return -1
		}
	case *microc.Binary:
		a.rvalue(e.X)
		a.rvalue(e.Y)
		return -1
	case *microc.Assign:
		rhs := a.rvalue(e.RHS)
		a.assignTo(e.LHS, rhs)
		return rhs
	case *microc.Field:
		base := a.rvalue(e.X)
		_ = base
		if sn, fld, ok := fieldOf(e); ok {
			t := a.tempNode()
			a.copyEdge(a.fieldNode(sn, fld), t)
			return t
		}
		return -1
	case *microc.Malloc:
		t := a.tempNode()
		a.addrOf(t, a.mallocNode(e.Site))
		return t
	case *microc.Cast:
		return a.rvalue(e.X)
	case *microc.Call:
		return a.call(e)
	}
	return -1
}

// assignTo generates constraints for lhs = (node rhs).
func (a *Analysis) assignTo(lhs microc.Expr, rhs int) {
	switch lhs := lhs.(type) {
	case *microc.VarRef:
		if d, ok := lhs.Ref.(*microc.VarDecl); ok {
			a.copyEdge(rhs, a.varNode(d))
		}
	case *microc.Unary:
		if lhs.Op == microc.OpDeref {
			dst := a.rvalue(lhs.X)
			a.store(dst, rhs)
		}
	case *microc.Field:
		a.rvalue(lhs.X)
		if sn, fld, ok := fieldOf(lhs); ok {
			a.copyEdge(rhs, a.fieldNode(sn, fld))
		}
	case *microc.Cast:
		a.assignTo(lhs.X, rhs)
	}
}

// lvalueNodes returns the constraint nodes denoting the locations of a
// non-deref lvalue (for address-of).
func (a *Analysis) lvalueNodes(e microc.Expr) []int {
	switch e := e.(type) {
	case *microc.VarRef:
		if d, ok := e.Ref.(*microc.VarDecl); ok {
			return []int{a.varNode(d)}
		}
	case *microc.Field:
		a.rvalue(e.X)
		if sn, fld, ok := fieldOf(e); ok {
			return []int{a.fieldNode(sn, fld)}
		}
	case *microc.Cast:
		return a.lvalueNodes(e.X)
	}
	return nil
}

// fieldOf extracts the struct name and field of a Field expression.
func fieldOf(e *microc.Field) (string, string, bool) {
	xt := e.X.StaticType()
	if e.Arrow {
		if pt, ok := xt.(microc.PtrType); ok {
			if st, ok := pt.Elem.(microc.StructType); ok {
				return st.Name, e.Name, true
			}
		}
		return "", "", false
	}
	if st, ok := xt.(microc.StructType); ok {
		return st.Name, e.Name, true
	}
	return "", "", false
}

// call generates constraints for a call and returns its result node.
func (a *Analysis) call(e *microc.Call) int {
	// Direct call?
	if vr, ok := e.Fun.(*microc.VarRef); ok {
		if f, isFunc := vr.Ref.(*microc.FuncDef); isFunc {
			a.callTargets[e] = []*microc.FuncDef{f}
			return a.bindCall(e, f)
		}
	}
	// Indirect: evaluate the function expression (unwrapping (*f)).
	funExpr := e.Fun
	if u, ok := funExpr.(*microc.Unary); ok && u.Op == microc.OpDeref {
		funExpr = u.X
	}
	fun := a.rvalue(funExpr)
	args := make([]int, len(e.Args))
	for i, arg := range e.Args {
		args[i] = a.rvalue(arg)
	}
	res := a.tempNode()
	a.indirect = append(a.indirect, indirectCall{call: e, fun: fun, args: args, res: res})
	a.exprNode[e] = res
	return res
}

// bindCall wires arguments and return value for a resolved callee.
func (a *Analysis) bindCall(e *microc.Call, f *microc.FuncDef) int {
	for i, arg := range e.Args {
		n := a.rvalue(arg)
		if i < len(f.Params) {
			a.copyEdge(n, a.varNode(f.Params[i]))
		}
	}
	t := a.tempNode()
	if f.Body != nil {
		a.copyEdge(a.retNode(f), t)
	}
	a.exprNode[e] = t
	return t
}

// bindIndirect resolves indirect calls against current points-to sets;
// reports whether any new binding was added.
func (a *Analysis) bindIndirect() bool {
	changed := false
	for _, ic := range a.indirect {
		if ic.fun < 0 {
			continue
		}
		for l := range a.pts[ic.fun] {
			loc := a.locs[l]
			if loc.Kind != FuncLoc {
				continue
			}
			f := loc.Func
			already := false
			for _, t := range a.callTargets[ic.call] {
				if t == f {
					already = true
				}
			}
			if already {
				continue
			}
			changed = true
			a.callTargets[ic.call] = append(a.callTargets[ic.call], f)
			for i, arg := range ic.args {
				if i < len(f.Params) {
					a.copyEdge(arg, a.varNode(f.Params[i]))
				}
			}
			if f.Body != nil {
				a.copyEdge(a.retNode(f), ic.res)
			}
		}
	}
	return changed
}

// solve runs the inclusion-constraint worklist to fixpoint.
func (a *Analysis) solve() {
	work := make([]int, 0, len(a.locs))
	for n := range a.locs {
		if len(a.pts[n]) > 0 {
			work = append(work, n)
		}
	}
	inWork := map[int]bool{}
	for _, n := range work {
		inWork[n] = true
	}
	push := func(n int) {
		if !inWork[n] {
			inWork[n] = true
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n] = false
		// Process complex constraints against pts(n).
		for l := range a.pts[n] {
			for dst := range a.loads[n] {
				if !a.succs[l][dst] {
					a.succs[l][dst] = true
					push(l)
				}
			}
			for src := range a.strs[n] {
				if !a.succs[src][l] {
					a.succs[src][l] = true
					push(src)
				}
			}
		}
		// Propagate along copy edges.
		for dst := range a.succs[n] {
			grew := false
			for l := range a.pts[n] {
				if !a.pts[dst][l] {
					a.pts[dst][l] = true
					grew = true
				}
			}
			if grew {
				push(dst)
			}
		}
	}
}

// queries ---------------------------------------------------------------

// pointable reports whether a location can be a points-to target.
func pointable(l Loc) bool {
	switch l.Kind {
	case VarLoc, FieldLoc, MallocLoc, FuncLoc:
		return true
	}
	return false
}

func (a *Analysis) ptsOf(n int) []Loc {
	if n < 0 {
		return nil
	}
	var out []Loc
	for l := range a.pts[n] {
		if pointable(a.locs[l]) {
			out = append(out, a.locs[l])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// PointsToVar returns the abstract locations a declared variable may
// point to.
func (a *Analysis) PointsToVar(d *microc.VarDecl) []Loc {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d.Kind == microc.FieldVar {
		return a.ptsOf(a.fieldNode(d.Owner, d.Name))
	}
	return a.ptsOf(a.varNode(d))
}

// PointsToField returns the abstract locations a struct field may
// point to.
func (a *Analysis) PointsToField(structName, field string) []Loc {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ptsOf(a.fieldNode(structName, field))
}

// PointsToLoc returns the points-to set of an abstract location
// (chasing one level of indirection).
func (a *Analysis) PointsToLoc(l Loc) []Loc {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ptsOf(l.id)
}

// CallTargets returns the possible callees of a call expression.
func (a *Analysis) CallTargets(e *microc.Call) []*microc.FuncDef {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.callTargets[e]
}

// LValueLocs returns the abstract locations an lvalue expression may
// denote.
func (a *Analysis) LValueLocs(e microc.Expr) []Loc {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lvalueLocs(e)
}

func (a *Analysis) lvalueLocs(e microc.Expr) []Loc {
	switch e := e.(type) {
	case *microc.VarRef:
		if d, ok := e.Ref.(*microc.VarDecl); ok {
			n := a.varNode(d)
			return []Loc{a.locs[n]}
		}
	case *microc.Unary:
		if e.Op == microc.OpDeref {
			if n, ok := a.exprOrVar(e.X); ok {
				return a.ptsOf(n)
			}
		}
	case *microc.Field:
		if sn, fld, ok := fieldOf(e); ok {
			n := a.fieldNode(sn, fld)
			return []Loc{a.locs[n]}
		}
	case *microc.Cast:
		return a.lvalueLocs(e.X)
	}
	return nil
}

// exprOrVar finds the constraint node of a (previously generated)
// expression.
func (a *Analysis) exprOrVar(e microc.Expr) (int, bool) {
	switch e := e.(type) {
	case *microc.VarRef:
		if d, ok := e.Ref.(*microc.VarDecl); ok {
			return a.varNode(d), true
		}
	case *microc.Cast:
		return a.exprOrVar(e.X)
	case *microc.Field:
		if sn, fld, ok := fieldOf(e); ok {
			return a.fieldNode(sn, fld), true
		}
	}
	if n, ok := a.exprNode[e]; ok {
		return n, true
	}
	return -1, false
}

// MayAlias reports whether two lvalue expressions may denote the same
// location.
func (a *Analysis) MayAlias(e1, e2 microc.Expr) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	l1 := a.lvalueLocs(e1)
	l2 := a.lvalueLocs(e2)
	for _, x := range l1 {
		for _, y := range l2 {
			if x.id == y.id {
				return true
			}
		}
	}
	return false
}
