package symexec

import (
	"strings"
	"testing"

	"mix/internal/microc"
	"mix/internal/pointer"
)

// run executes entry in src and returns the executor.
func run(t *testing.T, src, entry string) (*Executor, []Outcome) {
	t.Helper()
	prog := mustParse(src)
	x := New(prog, pointer.Analyze(prog))
	outs, err := x.Run(entry)
	if err != nil {
		t.Fatalf("Run(%s): %v", entry, err)
	}
	return x, outs
}

func hasReport(x *Executor, kind ReportKind, frag string) bool {
	for _, r := range x.ReportsOf(kind) {
		if strings.Contains(r.Msg, frag) {
			return true
		}
	}
	return false
}

func TestStraightLine(t *testing.T) {
	x, outs := run(t, `
int f(void) {
  int a = 1;
  int b = 2;
  return a + b;
}
`, "f")
	if len(outs) != 1 {
		t.Fatalf("paths = %d", len(outs))
	}
	if len(x.Reports) != 0 {
		t.Fatalf("reports: %v", x.Reports)
	}
}

func TestForkOnSymbolicParam(t *testing.T) {
	x, outs := run(t, `
int f(int n) {
  if (n > 0) return 1;
  return 2;
}
`, "f")
	if len(outs) != 2 {
		t.Fatalf("paths = %d, want 2", len(outs))
	}
	if x.Stats.Forks != 1 {
		t.Fatalf("forks = %d", x.Stats.Forks)
	}
}

func TestInfeasibleBranchPruned(t *testing.T) {
	_, outs := run(t, `
int f(int n) {
  if (n > 0) {
    if (n < 0) return 99;
    return 1;
  }
  return 2;
}
`, "f")
	if len(outs) != 2 {
		t.Fatalf("paths = %d, want 2 (n>0&&n<0 pruned)", len(outs))
	}
}

func TestNullDerefDetected(t *testing.T) {
	x, _ := run(t, `
int f(void) {
  int *p = NULL;
  return *p;
}
`, "f")
	if !hasReport(x, NullDeref, "p") {
		t.Fatalf("expected null-deref report, got %v", x.Reports)
	}
}

func TestNullCheckGuardsDeref(t *testing.T) {
	// Path sensitivity: the deref happens only when p != NULL.
	x, _ := run(t, `
int f(int *p) {
  if (p != NULL) return *p;
  return 0;
}
`, "f")
	if len(x.ReportsOf(NullDeref)) != 0 {
		t.Fatalf("guarded deref must not warn: %v", x.Reports)
	}
}

func TestUnguardedParamDerefWarns(t *testing.T) {
	// A parameter in an arbitrary context may be null.
	x, _ := run(t, `
int f(int *p) { return *p; }
`, "f")
	if !hasReport(x, NullDeref, "p") {
		t.Fatalf("expected warning, got %v", x.Reports)
	}
}

func TestMallocIsNonNull(t *testing.T) {
	x, _ := run(t, `
int f(void) {
  int *p = malloc(sizeof(int));
  return *p;
}
`, "f")
	if len(x.ReportsOf(NullDeref)) != 0 {
		t.Fatalf("malloc result is non-null: %v", x.Reports)
	}
}

func TestFlowSensitivity(t *testing.T) {
	// NULL is overwritten before the deref; flow-sensitive execution
	// must not warn (this is what the type system gets wrong).
	x, _ := run(t, `
int f(void) {
  int *p = NULL;
  p = malloc(sizeof(int));
  return *p;
}
`, "f")
	if len(x.ReportsOf(NullDeref)) != 0 {
		t.Fatalf("overwritten null must not warn: %v", x.Reports)
	}
}

func TestNonNullParamChecked(t *testing.T) {
	x, _ := run(t, `
void sink(int *nonnull q) { return; }
int f(void) {
  sink(NULL);
  return 0;
}
`, "f")
	if !hasReport(x, NullArg, "q") {
		t.Fatalf("expected null-arg report, got %v", x.Reports)
	}
}

func TestNonNullParamGuardedCall(t *testing.T) {
	x, _ := run(t, `
void sink(int *nonnull q) { return; }
int f(int *p) {
  if (p != NULL) sink(p);
  return 0;
}
`, "f")
	if len(x.ReportsOf(NullArg)) != 0 {
		t.Fatalf("guarded call must not warn: %v", x.Reports)
	}
}

func TestCase1EndToEnd(t *testing.T) {
	// The full Case 1 shape in pure symbolic execution.
	x, _ := run(t, `
struct sockaddr { int family; };
void sysutil_free(void *nonnull p_ptr) { return; }
void sockaddr_clear(struct sockaddr **p_sock) {
  if (*p_sock != NULL) {
    sysutil_free(*p_sock);
    *p_sock = NULL;
  }
}
`, "sockaddr_clear")
	if len(x.ReportsOf(NullArg)) != 0 {
		t.Fatalf("Case 1: symbolic executor must prove *p_sock non-null: %v", x.Reports)
	}
}

func TestCallsAndReturns(t *testing.T) {
	_, outs := run(t, `
int id(int v) { return v; }
int f(void) { return id(41) + 1; }
`, "f")
	if len(outs) != 1 {
		t.Fatalf("paths = %d", len(outs))
	}
	if got := outs[0].Ret.String(); got != "(41 + 1)" {
		t.Fatalf("ret = %s", got)
	}
}

func TestLoopUnrollBound(t *testing.T) {
	x, outs := run(t, `
int f(int n) {
  int i = 0;
  while (i < n) {
    i = i + 1;
  }
  return i;
}
`, "f")
	if len(x.ReportsOf(LoopBound)) == 0 {
		t.Fatal("symbolic loop bound should be reported")
	}
	// Paths: exit after 0..MaxUnroll iterations.
	if len(outs) == 0 || len(outs) > x.MaxUnroll+1 {
		t.Fatalf("paths = %d", len(outs))
	}
}

func TestConcreteLoopTerminates(t *testing.T) {
	x, outs := run(t, `
int f(void) {
  int i = 0;
  while (i < 3) { i = i + 1; }
  return i;
}
`, "f")
	if len(outs) != 1 {
		t.Fatalf("paths = %d", len(outs))
	}
	if len(x.ReportsOf(LoopBound)) != 0 {
		t.Fatalf("concrete loop fits in bound: %v", x.Reports)
	}
}

func TestExternHavoc(t *testing.T) {
	x, _ := run(t, `
int *getenv_(void);
int f(void) {
  int *p = getenv_();
  return *p;
}
`, "f")
	// Extern may return null: deref must warn.
	if !hasReport(x, NullDeref, "p") {
		t.Fatalf("extern result deref should warn: %v", x.Reports)
	}
}

func TestFunctionPointerConcrete(t *testing.T) {
	x, _ := run(t, `
int fired;
void handler(void) { fired = 1; }
fnptr cb;
int f(void) {
  cb = handler;
  (*cb)();
  return fired;
}
`, "f")
	if len(x.ReportsOf(UnsupportedFnPtr)) != 0 {
		t.Fatalf("concrete fn ptr should be callable: %v", x.Reports)
	}
}

func TestSymbolicFunctionPointerUnsupported(t *testing.T) {
	// Case 4's limitation: an uninitialized function pointer cell is
	// symbolic; calling it is unsupported.
	x, _ := run(t, `
fnptr s_exit_func;
int f(void) {
  if (s_exit_func != NULL) (*s_exit_func)();
  return 0;
}
`, "f")
	if len(x.ReportsOf(UnsupportedFnPtr)) == 0 {
		t.Fatalf("expected fnptr report, got %v", x.Reports)
	}
}

func TestStructFieldsThroughPointer(t *testing.T) {
	x, outs := run(t, `
struct pair { int a; int b; };
int f(void) {
  struct pair *p = malloc(sizeof(struct pair));
  p->a = 1;
  p->b = 2;
  return p->a + p->b;
}
`, "f")
	if len(outs) != 1 {
		t.Fatalf("paths = %d", len(outs))
	}
	if got := outs[0].Ret.String(); got != "(1 + 2)" {
		t.Fatalf("ret = %s", got)
	}
	if len(x.Reports) != 0 {
		t.Fatalf("reports: %v", x.Reports)
	}
}

func TestLocalInitializationIdiom(t *testing.T) {
	// Section 2's "local initialization of shared data": malloc then
	// initialize fields; symbolic execution sees the object is local.
	x, _ := run(t, `
struct foo { int *bar; int *baz; };
struct foo *g;
void f(void) {
  struct foo *x = malloc(sizeof(struct foo));
  x->bar = malloc(sizeof(int));
  x->baz = malloc(sizeof(int));
  g = x;
}
`, "f")
	if len(x.ReportsOf(NullDeref)) != 0 {
		t.Fatalf("no null deref expected: %v", x.Reports)
	}
}

func TestAliasingThroughDoublePointer(t *testing.T) {
	x, _ := run(t, `
int f(void) {
  int *p = NULL;
  int **pp = &p;
  *pp = malloc(sizeof(int));
  return *p;
}
`, "f")
	if len(x.ReportsOf(NullDeref)) != 0 {
		t.Fatalf("write through alias should cure null: %v", x.Reports)
	}
}

func TestGlobalInitializers(t *testing.T) {
	x, _ := run(t, `
int *g = NULL;
int f(void) { return *g; }
`, "f")
	if !hasReport(x, NullDeref, "g") {
		t.Fatalf("global NULL initializer must warn: %v", x.Reports)
	}
}

func TestRecursionDepthBounded(t *testing.T) {
	x, outs := run(t, `
int f(int n) {
  if (n < 1) return 0;
  return f(n - 1);
}
`, "f")
	if len(outs) == 0 {
		t.Fatal("no outcomes")
	}
	if len(x.ReportsOf(Imprecision)) == 0 {
		t.Fatal("expected a depth-bound report for symbolic recursion")
	}
}

func TestFreshMallocPerExecution(t *testing.T) {
	// Unlike the pointer analysis, the executor distinguishes two
	// executions of one malloc site.
	_, outs := run(t, `
int *mk(void) { return malloc(sizeof(int)); }
int f(void) {
  int *a = mk();
  int *b = mk();
  if (a == b) return 1;
  return 0;
}
`, "f")
	if len(outs) != 1 {
		t.Fatalf("a==b should be definitely false; paths = %d", len(outs))
	}
	if outs[0].Ret.String() != "0" {
		t.Fatalf("ret = %s", outs[0].Ret)
	}
}

// mustParse parses a MicroC test fixture, panicking on error; the
// library itself reports parse errors through the normal return path,
// fixtures are expected to be valid.
func mustParse(src string) *microc.Program {
	prog, err := microc.Parse(src)
	if err != nil {
		panic("bad MicroC fixture: " + err.Error())
	}
	return prog
}
