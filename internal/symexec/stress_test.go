package symexec

import (
	"fmt"
	"strings"
	"testing"

	"mix/internal/engine"
	"mix/internal/pointer"
)

// nestedIfSrc builds a complete binary tree of conditionals of the
// given depth (2^depth - 1 branching conditionals, 2^depth paths) over
// symbolic int globals. Odd-numbered leaves dereference NULL — a
// distinct report position per leaf, and the path dies — while
// even-numbered leaves return a distinct constant, so both the report
// sequence and the surviving-outcome sequence are order-sensitive.
func nestedIfSrc(depth int) string {
	var b strings.Builder
	for i := 0; i < 1<<depth-1; i++ {
		fmt.Fprintf(&b, "int c%d;\n", i)
	}
	b.WriteString("int *p;\n")
	b.WriteString("int f(void) {\n")
	leaf := 0
	var emit func(node, d int)
	emit = func(node, d int) {
		if d == depth {
			if leaf%2 == 1 {
				b.WriteString("p = NULL;\n")
				b.WriteString("return *p;\n")
			} else {
				fmt.Fprintf(&b, "return %d;\n", 1000+leaf)
			}
			leaf++
			return
		}
		fmt.Fprintf(&b, "if (c%d > 0) {\n", node)
		emit(2*node+1, d+1)
		b.WriteString("} else {\n")
		emit(2*node+2, d+1)
		b.WriteString("}\n")
	}
	emit(0, 0)
	b.WriteString("}\n")
	return b.String()
}

func reportStrings(x *Executor) []string {
	out := make([]string, len(x.Reports))
	for i, r := range x.Reports {
		out[i] = r.String()
	}
	return out
}

// returnValues extracts the surviving paths' return values in join
// order; leaf constants are distinct, so this is sensitive to any
// reordering of the parallel join.
func returnValues(outs []Outcome) []string {
	vals := make([]string, len(outs))
	for i, o := range outs {
		vals[i] = fmt.Sprint(o.Ret)
	}
	return vals
}

// TestParallelMatchesSequential is the determinism stress test: a tree
// of 127 branching conditionals explored by the parallel engine must
// produce byte-identical reports and the same outcome order as the
// sequential executor. Run under -race this also exercises every
// shared structure (memory objects, pointer analysis, report sinks,
// solver pool) across workers.
func TestParallelMatchesSequential(t *testing.T) {
	const depth = 7 // 127 conditionals, 128 paths, 64 survive
	src := nestedIfSrc(depth)

	seq := New(mustParse(src), pointer.Analyze(mustParse(src)))
	seqOuts, err := seq.Run("f")
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	wantReports := reportStrings(seq)
	wantRets := returnValues(seqOuts)
	if len(seqOuts) != 1<<depth/2 {
		t.Fatalf("sequential surviving paths = %d, want %d", len(seqOuts), 1<<depth/2)
	}
	if len(wantReports) != 1<<depth/2 {
		t.Fatalf("sequential reports = %d, want one null-deref per odd leaf", len(wantReports))
	}

	for _, workers := range []int{1, 2, 8} {
		par := New(mustParse(src), pointer.Analyze(mustParse(src)))
		par.Engine = engine.New(engine.Options{Workers: workers})
		parOuts, err := par.Run("f")
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := returnValues(parOuts); strings.Join(got, " ") != strings.Join(wantRets, " ") {
			t.Fatalf("workers=%d outcome order differs\nseq: %v\npar: %v", workers, wantRets, got)
		}
		if got := reportStrings(par); strings.Join(got, "\n") != strings.Join(wantReports, "\n") {
			t.Fatalf("workers=%d reports differ from sequential\nseq:\n%s\npar:\n%s",
				workers, strings.Join(wantReports, "\n"), strings.Join(got, "\n"))
		}
		if s := par.Engine.Snapshot(); s.Forks != 1<<depth-1 {
			t.Fatalf("workers=%d engine forks = %d, want %d", workers, s.Forks, 1<<depth-1)
		}
	}
}

// TestEnginePathBudgetTruncates checks graceful degradation: when the
// engine's path budget runs out the executor truncates to the then
// branch with an Imprecision report instead of failing.
func TestEnginePathBudgetTruncates(t *testing.T) {
	src := nestedIfSrc(7)
	x := New(mustParse(src), pointer.Analyze(mustParse(src)))
	x.Engine = engine.New(engine.Options{Workers: 1, MaxPaths: 32})
	_, err := x.Run("f")
	if err != nil {
		t.Fatalf("budgeted run must degrade gracefully, got error %v", err)
	}
	truncated := 0
	for _, r := range x.Reports {
		if r.Kind == Imprecision && strings.Contains(r.Msg, "engine path budget") {
			truncated++
		}
	}
	if truncated == 0 {
		t.Fatal("expected Imprecision reports marking budget truncation")
	}
	s := x.Engine.Snapshot()
	if !s.Exhausted {
		t.Fatalf("engine must record exhaustion, got %+v", s)
	}
	if s.Forks != 31 {
		t.Fatalf("forks = %d, want 31 (budget of 32 paths)", s.Forks)
	}
}

// TestEngineForkDepthBudget bounds the fork depth of any single path:
// past the bound each path degrades to its then branch.
func TestEngineForkDepthBudget(t *testing.T) {
	src := nestedIfSrc(6)
	x := New(mustParse(src), pointer.Analyze(mustParse(src)))
	x.Engine = engine.New(engine.Options{Workers: 1, MaxForkDepth: 3})
	outs, err := x.Run("f")
	if err != nil {
		t.Fatalf("depth-bounded run must degrade gracefully, got %v", err)
	}
	// 2^3 paths fork; each then follows leftmost (even, surviving)
	// leaves under truncation.
	if len(outs) != 8 {
		t.Fatalf("paths = %d, want 8 under fork depth 3", len(outs))
	}
	if s := x.Engine.Snapshot(); s.Forks != 7 || !s.Exhausted {
		t.Fatalf("snapshot = %+v, want 7 forks and exhaustion", s)
	}
}
