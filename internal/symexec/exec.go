package symexec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/microc"
	"mix/internal/pointer"
	"mix/internal/solver"
)

// ReportKind classifies executor findings.
type ReportKind int

const (
	// NullDeref is a dereference of a possibly-null pointer.
	NullDeref ReportKind = iota
	// NullArg is a possibly-null argument to a nonnull parameter.
	NullArg
	// UnsupportedFnPtr is a call through a symbolic function pointer
	// (the paper's Case 4 limitation).
	UnsupportedFnPtr
	// LoopBound is a path truncated at the unrolling bound.
	LoopBound
	// Imprecision is a value the executor could not model.
	Imprecision
)

func (k ReportKind) String() string {
	switch k {
	case NullDeref:
		return "null-deref"
	case NullArg:
		return "null-arg"
	case UnsupportedFnPtr:
		return "fnptr"
	case LoopBound:
		return "loop-bound"
	}
	return "imprecision"
}

// Report is one symbolic-execution finding on one feasible path.
type Report struct {
	Kind ReportKind
	Pos  microc.Pos
	Msg  string
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %s: %s", r.Pos, r.Kind, r.Msg)
}

// Outcome is one completed path of a function execution.
type Outcome struct {
	St  State
	Ret Value
}

// Stats counts executor work.
type Stats struct {
	Paths int
	Forks int
	// Merges counts join-point state merges; MergedCells the cells
	// folded into guarded ite values across them; CollapsedCells the
	// cells the arms turned out to agree on (no ite needed).
	Merges         int
	MergedCells    int
	CollapsedCells int
}

// Executor executes MicroC functions symbolically.
type Executor struct {
	Prog *microc.Program
	PA   *pointer.Analysis
	Solv *solver.Solver

	// MaxUnroll bounds loop iterations per path.
	MaxUnroll int
	// MaxDepth bounds inlined call depth.
	MaxDepth int
	// MaxPaths bounds live paths per Run.
	MaxPaths int

	// MergeMode enables veritesting-style state merging at conditional
	// join points (DESIGN.md section 12): when both arms reach the join
	// alive, their states fold into one with guarded ite cells instead
	// of continuing as separate paths. The zero value is off — the
	// classic fork-per-conditional discipline.
	MergeMode engine.MergeMode
	// MergeCap bounds the diverging cells a joins-mode merge may
	// introduce ite values for (0 means the default, 8); a merge that
	// would exceed it falls back to forking. Aggressive mode ignores
	// the cap.
	MergeCap int

	// InitCell, when non-nil, provides the initial value of an
	// uninitialized cell (MIXY installs the typed-to-symbolic
	// translation of Section 4.1 here). Returning nil falls back to
	// the default lazy initialization.
	InitCell func(x *Executor, st State, obj *Object, field string) Value
	// TypedCall, when non-nil, handles calls to MIX(typed) functions
	// (MIXY installs the symbolic-to-typed switch here).
	TypedCall func(x *Executor, st State, f *microc.FuncDef, args []Value, pos microc.Pos) ([]Outcome, error)

	// Summaries, when non-nil, answers eligible calls from compositional
	// function summaries instead of inlining the callee body (see
	// summary.go and internal/summary). Every fallback to inlining is
	// observable: a counter bump plus a "summary" trace event.
	Summaries Summarizer

	// Engine, when non-nil, routes feasibility queries through the
	// engine's memoizing solver pool and — unless SerialFork is set —
	// runs the two feasible sides of a conditional as parallel
	// scheduler tasks, with reports merged back in canonical
	// (sequential) order. Nil gives the original sequential executor.
	Engine *engine.Engine
	// SerialFork keeps path exploration on one goroutine even with an
	// Engine, so only the solver pool is shared. MIXY sets this: its
	// InitCell/TypedCall hooks mutate the shared qualifier inference,
	// which must not run concurrently.
	SerialFork bool

	Reports []Report
	Stats   Stats

	// stopped flips on the first run-stopping fault (deadline,
	// cancellation, recovered panic, injected abort); statement
	// execution then unwinds promptly with empty flow sets, keeping
	// every already-completed path and its reports.
	stopped atomic.Bool
	// degradedMu guards degraded, the first run-stopping fault.
	degradedMu sync.Mutex
	degraded   error

	// mu guards the executor-global tables below (and Reports/Stats)
	// when branches execute in parallel.
	mu       sync.Mutex
	nextID   int
	varObjs  map[*microc.VarDecl]*Object
	locObjs  map[string]*Object
	anonObjs map[cellKey]*Object
	reported map[string]bool
}

// parallel reports whether conditional forks may run concurrently.
func (x *Executor) parallel() bool {
	return x.Engine != nil && !x.SerialFork
}

// degrade absorbs a run-stopping classified fault: record it once (in
// the run-wide counters and as an Imprecision report naming the fault
// class), then stop further exploration.
func (x *Executor) degrade(st State, err error, pos microc.Pos) {
	if !x.stopped.CompareAndSwap(false, true) {
		return
	}
	x.degradedMu.Lock()
	if x.degraded == nil {
		x.degraded = err
	}
	x.degradedMu.Unlock()
	x.Engine.Faults().RecordErr(err)
	st.span.Degrade(fault.ClassOf(err).String(), "exploration stopped")
	x.report(st, Imprecision, pos, "exploration degraded (%s): %v", fault.ClassOf(err), err)
}

// Degraded returns the first run-stopping fault, or nil.
func (x *Executor) Degraded() error {
	x.degradedMu.Lock()
	defer x.degradedMu.Unlock()
	return x.degraded
}

// interrupted polls the stop flag and the run context at a statement
// boundary; true means the caller should unwind with an empty flow
// set (completed sibling paths keep their results).
func (x *Executor) interrupted(st State, pos microc.Pos) bool {
	if x.stopped.Load() {
		return true
	}
	if err := x.Engine.Interrupted("symexec.exec"); err != nil {
		x.degrade(st, err, pos)
		return true
	}
	return false
}

// New returns an executor over prog with pointer analysis pa.
func New(prog *microc.Program, pa *pointer.Analysis) *Executor {
	return &Executor{
		Prog: prog, PA: pa, Solv: solver.New(),
		MaxUnroll: 6, MaxDepth: 24, MaxPaths: 2048,
		varObjs:  map[*microc.VarDecl]*Object{},
		locObjs:  map[string]*Object{},
		anonObjs: map[cellKey]*Object{},
		reported: map[string]bool{},
	}
}

// report records a finding. Under parallel exploration the finding
// goes to the path's task-local sink (merged into the parent sink in
// branch order at each join, and deduplicated once at the root), so
// the final Reports sequence is byte-identical to the sequential one.
func (x *Executor) report(st State, kind ReportKind, pos microc.Pos, format string, args ...any) {
	r := Report{Kind: kind, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	if st.rs != nil {
		st.rs.reports = append(st.rs.reports, r)
		return
	}
	x.mu.Lock()
	x.addReportLocked(r)
	x.mu.Unlock()
}

// addReportLocked appends r unless an identical report was already
// recorded. Callers hold x.mu.
func (x *Executor) addReportLocked(r Report) {
	key := r.String()
	if x.reported[key] {
		return
	}
	x.reported[key] = true
	x.Reports = append(x.Reports, r)
}

// flushSink drains a root report sink into Reports with the same
// online first-wins deduplication the sequential executor applies.
func (x *Executor) flushSink(rs *reportSink) {
	x.mu.Lock()
	for _, r := range rs.reports {
		x.addReportLocked(r)
	}
	x.mu.Unlock()
	rs.reports = nil
}

// ReportsOf filters reports by kind.
func (x *Executor) ReportsOf(kind ReportKind) []Report {
	var out []Report
	for _, r := range x.Reports {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

func (x *Executor) freshID() int {
	x.mu.Lock()
	x.nextID++
	id := x.nextID
	x.mu.Unlock()
	return id
}

// FreshInt returns a fresh symbolic integer.
func (x *Executor) FreshInt(hint string) VInt {
	return VInt{T: solver.IntVar{Name: fmt.Sprintf("cx%d_%s", x.freshID(), hint)}}
}

// FreshBool returns a fresh boolean choice variable.
func (x *Executor) FreshBool(hint string) solver.Formula {
	return solver.BoolVar{Name: fmt.Sprintf("cb%d_%s", x.freshID(), hint)}
}

// feasible decides satisfiability of a path condition plus extra
// guards, erring toward feasible on solver resource errors
// (conservative: keeps reports). With an engine the query goes through
// its sliced, memoizing, per-worker solver pipeline, which classifies
// resource-exhausted queries the same way: unknown → keep the path.
// The querying path's span (nil when tracing is off) receives the
// verdict as a solve event.
func (x *Executor) feasible(st State, pc *solver.PC, extras ...solver.Formula) bool {
	if x.Engine != nil {
		return x.Engine.FeasiblePCSpan(st.span, pc, extras...)
	}
	if pc.Dead() {
		return false
	}
	f := pc.Formula()
	for _, e := range extras {
		f = solver.NewAnd(f, e)
	}
	sat, err := x.Solv.Sat(f)
	if err != nil {
		return true
	}
	return sat
}

// VarObj returns the (unique, conflated across invocations) object of
// a declared variable.
func (x *Executor) VarObj(d *microc.VarDecl) *Object {
	x.mu.Lock()
	defer x.mu.Unlock()
	if o, ok := x.varObjs[d]; ok {
		return o
	}
	name := d.Name
	if d.Owner != "" {
		name = d.Owner + "::" + d.Name
	}
	x.nextID++
	o := &Object{ID: x.nextID, Name: name, Type: d.Type}
	if x.PA != nil {
		for _, l := range x.PA.LValueLocs(&microc.VarRef{Name: d.Name, Ref: d}) {
			o.Loc, o.HasLoc = l, true
			break
		}
	}
	x.varObjs[d] = o
	return o
}

// LocObj materializes an abstract pointer-analysis location as an
// object (MIXY's lazy memory model, Section 4.2).
func (x *Executor) LocObj(l pointer.Loc) (*Object, bool) {
	switch l.Kind {
	case pointer.VarLoc:
		return x.VarObj(l.Var), true
	case pointer.MallocLoc:
		key := l.String()
		x.mu.Lock()
		defer x.mu.Unlock()
		if o, ok := x.locObjs[key]; ok {
			return o, true
		}
		x.nextID++
		o := &Object{ID: x.nextID, Name: key, Type: microc.IntType{}, Loc: l, HasLoc: true}
		x.locObjs[key] = o
		return o, true
	case pointer.FieldLoc:
		key := l.String()
		var ty microc.Type = microc.IntType{}
		if sd, ok := x.Prog.Struct(l.Struct); ok {
			if fd, ok := sd.Field(l.Field); ok {
				ty = fd.Type
			}
		}
		x.mu.Lock()
		defer x.mu.Unlock()
		if o, ok := x.locObjs[key]; ok {
			return o, true
		}
		x.nextID++
		o := &Object{ID: x.nextID, Name: key, Type: ty, Loc: l, HasLoc: true}
		x.locObjs[key] = o
		return o, true
	}
	return nil, false
}

// CellType computes the declared type of a cell (exported for MIXY's
// typed-to-symbolic translation hook).
func (x *Executor) CellType(obj *Object, field string) microc.Type {
	return x.cellType(obj, field)
}

// InitPointerCell builds a lazily-initialized pointer value for a cell
// using the given (possibly qualifier-overridden) pointer type. MIXY
// calls this from its InitCell hook after substituting the inferred
// qualifier for the declared one.
func (x *Executor) InitPointerCell(obj *Object, field string, ty microc.PtrType) Value {
	return x.initPointer(obj, field, ty)
}

// cellType computes the declared type of a cell.
func (x *Executor) cellType(obj *Object, field string) microc.Type {
	if field == "" {
		return obj.Type
	}
	st, ok := obj.Type.(microc.StructType)
	if !ok {
		if pt, isPtr := obj.Type.(microc.PtrType); isPtr {
			st, ok = pt.Elem.(microc.StructType)
		}
	}
	if ok {
		if sd, found := x.Prog.Struct(st.Name); found {
			if fd, found := sd.Field(field); found {
				return fd.Type
			}
		}
	}
	return microc.IntType{}
}

// ReadCell reads a cell, lazily initializing it on first access.
func (x *Executor) ReadCell(st State, obj *Object, field string) Value {
	if v, ok := st.Mem.Read(obj, field); ok {
		return v
	}
	var v Value
	if x.InitCell != nil {
		v = x.InitCell(x, st, obj, field)
	}
	if v == nil {
		v = x.defaultInit(st, obj, field)
	}
	st.Mem.Write(obj, field, v)
	return v
}

// defaultInit builds the arbitrary-context initial value of a cell:
// fresh integers for ints, possibly-null pointers whose targets come
// from the pointer analysis ("(α:bool) ? loc : 0"), and opaque values
// for function pointers (the executor cannot call those).
func (x *Executor) defaultInit(st State, obj *Object, field string) Value {
	ty := x.cellType(obj, field)
	switch ty := ty.(type) {
	case microc.IntType, microc.VoidType:
		return x.FreshInt(obj.Name + field)
	case microc.PtrType:
		return x.initPointer(obj, field, ty)
	case microc.FnPtrType:
		return VUnknown{Why: "symbolic function pointer " + obj.Name}
	case microc.StructType:
		return VUnknown{Why: "whole-struct value of " + obj.Name}
	default:
		_ = ty
		return VUnknown{Why: "cell " + obj.Name}
	}
}

// initPointer builds a maybe-null pointer over the abstract targets of
// the cell.
func (x *Executor) initPointer(obj *Object, field string, ty microc.PtrType) Value {
	var targets []pointer.Loc
	if x.PA != nil && obj.HasLoc {
		if field == "" {
			targets = x.PA.PointsToLoc(obj.Loc)
		} else if st, ok := structNameOf(obj.Type); ok {
			targets = x.PA.PointsToField(st, field)
		}
	}
	var v Value = VNull{}
	if ty.Qual == microc.QNonNull {
		v = nil
	}
	for _, t := range targets {
		if t.Kind == pointer.FuncLoc {
			return VUnknown{Why: "function-pointer targets in " + obj.Name}
		}
		to, ok := x.LocObj(t)
		if !ok {
			continue
		}
		tv := Value(VObj{Obj: to})
		if v == nil {
			v = tv
		} else {
			v = mkITE(x.FreshBool("pt"), tv, v)
		}
	}
	if v == nil || isOnlyNull(v) && len(targets) == 0 {
		// No known targets: a fresh anonymous object (one per cell,
		// created under the lock so parallel paths agree on it).
		x.mu.Lock()
		anon, ok := x.anonObjs[cellKey{obj, field}]
		if !ok {
			x.nextID++
			anon = &Object{ID: x.nextID, Name: obj.Name + "." + field + ".tgt", Type: ty.Elem}
			x.anonObjs[cellKey{obj, field}] = anon
		}
		x.mu.Unlock()
		if ty.Qual == microc.QNonNull {
			return VObj{Obj: anon}
		}
		return mkITE(x.FreshBool("nl"), VObj{Obj: anon}, VNull{})
	}
	return v
}

func isOnlyNull(v Value) bool {
	_, ok := v.(VNull)
	return ok
}

func structNameOf(t microc.Type) (string, bool) {
	switch t := t.(type) {
	case microc.StructType:
		return t.Name, true
	case microc.PtrType:
		return structNameOf(t.Elem)
	}
	return "", false
}
