package symexec

import (
	"sort"
	"testing"

	"mix/internal/engine"
	"mix/internal/pointer"
	"mix/internal/solver"
)

// runMerged executes entry with the given merge mode and cap.
func runMerged(t *testing.T, src, entry string, mode engine.MergeMode, cap int) (*Executor, []Outcome) {
	t.Helper()
	prog := mustParse(src)
	x := New(prog, pointer.Analyze(prog))
	x.MergeMode = mode
	x.MergeCap = cap
	outs, err := x.Run(entry)
	if err != nil {
		t.Fatalf("Run(%s, merge=%s): %v", entry, mode, err)
	}
	return x, outs
}

const ladder3 = `
int f(int a, int b, int c) {
  int s = 0;
  if (a > 0) { s = s + 1; } else { s = s + 2; }
  if (b > 0) { s = s + 4; } else { s = s + 8; }
  if (c > 0) { s = s + 16; } else { s = s + 32; }
  return s;
}
`

// TestJoinsCollapsesLadder is the unit-sized version of the acceptance
// benchmark: a ladder of k independent diamonds explodes to 2^k paths
// forked but stays ONE merged state with k joins.
func TestJoinsCollapsesLadder(t *testing.T) {
	xOff, offOuts := runMerged(t, ladder3, "f", engine.MergeOff, 0)
	if len(offOuts) != 8 {
		t.Fatalf("forked paths = %d, want 2^3", len(offOuts))
	}
	if xOff.Stats.Merges != 0 {
		t.Fatalf("merge off performed %d merges", xOff.Stats.Merges)
	}
	x, outs := runMerged(t, ladder3, "f", engine.MergeJoins, 0)
	if len(outs) != 1 {
		t.Fatalf("merged paths = %d, want 1", len(outs))
	}
	if x.Stats.Merges != 3 {
		t.Fatalf("merges = %d, want one per diamond", x.Stats.Merges)
	}
	if x.Stats.MergedCells == 0 {
		t.Fatal("the diverging cell s never became a guarded ite")
	}
	if len(x.Reports) != 0 || len(xOff.Reports) != 0 {
		t.Fatalf("clean ladder reported: merged %v, forked %v", x.Reports, xOff.Reports)
	}
}

// TestJoinsModeRequiresCanonicalDiamond: an arm that returns leaves the
// join with one live flow on that side, so joins mode passes the flows
// through unmerged when possible and still merges the canonical part.
func TestJoinsPassesReturnedFlowsThrough(t *testing.T) {
	src := `
int f(int a, int b) {
  int s = 0;
  if (a > 0) {
    if (b > 0) { return 100; }
    s = 1;
  } else {
    s = 2;
  }
  return s;
}
`
	x, outs := runMerged(t, src, "f", engine.MergeJoins, 0)
	// The early return is one outcome; the two fall-through paths merge
	// at the outer join into one.
	if len(outs) != 2 {
		t.Fatalf("paths = %d, want returned + merged", len(outs))
	}
	if x.Stats.Merges != 1 {
		t.Fatalf("merges = %d, want only the outer join", x.Stats.Merges)
	}
}

// TestMergeCapDeclines pins the divergence-cap heuristic: more
// diverging cells than the cap and the join falls back to forking;
// within the cap it merges.
func TestMergeCapDeclines(t *testing.T) {
	src := `
int f(int a) {
  int s = 0;
  int u = 0;
  if (a > 0) { s = 1; u = 1; } else { s = 2; u = 2; }
  return s + u;
}
`
	x, outs := runMerged(t, src, "f", engine.MergeJoins, 1)
	if len(outs) != 2 || x.Stats.Merges != 0 {
		t.Fatalf("cap=1 with 2 diverging cells: paths=%d merges=%d, want forked", len(outs), x.Stats.Merges)
	}
	x, outs = runMerged(t, src, "f", engine.MergeJoins, 0) // default cap 8
	if len(outs) != 1 || x.Stats.Merges != 1 || x.Stats.MergedCells != 2 {
		t.Fatalf("default cap: paths=%d merges=%d cells=%d, want one merge of both cells",
			len(outs), x.Stats.Merges, x.Stats.MergedCells)
	}
	// Aggressive mode ignores the cap entirely.
	x, outs = runMerged(t, src, "f", engine.MergeAggressive, 1)
	if len(outs) != 1 || x.Stats.Merges != 1 {
		t.Fatalf("aggressive with cap=1: paths=%d merges=%d, want merged", len(outs), x.Stats.Merges)
	}
}

// TestMergeCollapsesAgreeingCells: cells the arms agree on keep their
// plain value instead of growing a degenerate ite.
func TestMergeCollapsesAgreeingCells(t *testing.T) {
	src := `
int f(int a) {
  int s = 0;
  int u = 0;
  if (a > 0) { s = 5; u = 1; } else { s = 5; u = 2; }
  return s + u;
}
`
	x, outs := runMerged(t, src, "f", engine.MergeJoins, 0)
	if len(outs) != 1 || x.Stats.Merges != 1 {
		t.Fatalf("paths=%d merges=%d, want one merged state", len(outs), x.Stats.Merges)
	}
	if x.Stats.MergedCells != 1 {
		t.Fatalf("merged cells = %d, want only u (s agrees)", x.Stats.MergedCells)
	}
	if x.Stats.CollapsedCells == 0 {
		t.Fatal("the agreeing cell s was not counted as collapsed")
	}
}

// TestMergedReportsMatchForked: findings on a guarded null deref must
// come out the same whether the preceding diamond forked or merged.
func TestMergedReportsMatchForked(t *testing.T) {
	src := `
void g(int *p, int a) {
  int s = 0;
  if (a > 0) { s = 1; } else { s = 2; }
  *p = s;
}
`
	want := sortedReports(t, src, engine.MergeOff)
	for _, mode := range []engine.MergeMode{engine.MergeJoins, engine.MergeAggressive} {
		if got := sortedReports(t, src, mode); got != want {
			t.Fatalf("merge=%s reports diverge\nforked:\n%s\nmerged:\n%s", mode, want, got)
		}
	}
	if want == "" {
		t.Fatal("the unguarded deref produced no report; property is vacuous")
	}
}

func sortedReports(t *testing.T, src string, mode engine.MergeMode) string {
	t.Helper()
	x, _ := runMerged(t, src, "g", mode, 0)
	lines := make([]string, len(x.Reports))
	for i, r := range x.Reports {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}

// TestMergeStatesDirect drives mergeStates — the fold behind both the
// join-point merge and the aggressive loop-frontier fold — on
// hand-built sibling states: the merged PC must be base ∧ (g1 ∨ g2),
// a diverging cell must become a guarded ite selecting the right arm,
// and states not descending from base must decline.
func TestMergeStatesDirect(t *testing.T) {
	prog := mustParse(`int f(void) { return 0; }`)
	x := New(prog, pointer.Analyze(prog))
	obj := &Object{ID: 1, Name: "v"}

	n := solver.IntVar{Name: "n"}
	g1 := solver.Formula(solver.Lt{X: solver.IntConst{Val: 0}, Y: n})
	g2 := solver.Formula(solver.Le{X: n, Y: solver.IntConst{Val: 0}})
	base := solver.PCTrue.And(solver.Le{X: solver.IntConst{Val: -10}, Y: n})

	mkState := func(g solver.Formula, val int64) State {
		st := State{PC: base.And(g), Mem: NewMemory()}
		st.Mem.Write(obj, "", VInt{T: solver.IntConst{Val: val}})
		return st
	}
	s1, s2 := mkState(g1, 1), mkState(g2, 2)
	merged, ok := x.mergeStates(nil, "t:0", base, []State{s1, s2}, 0)
	if !ok {
		t.Fatal("sibling states extending base must merge")
	}
	// The merged flow is exactly the union of the arms: reachable under
	// either guard, and the cell reads 1 under g1, 2 under g2 — never
	// the cross combinations.
	v := x.ReadCell(merged, obj, "")
	iv, isInt := v.(VInt)
	if !isInt {
		t.Fatalf("merged cell = %#v, want a term-level ite", v)
	}
	pc := merged.PC
	mustFeasible := func(f solver.Formula, want bool) {
		t.Helper()
		if got := x.feasible(merged, pc, f); got != want {
			t.Fatalf("feasible(merged PC ∧ %s) = %v, want %v", f, got, want)
		}
	}
	mustFeasible(solver.And{X: g1, Y: solver.Eq{X: iv.T, Y: solver.IntConst{Val: 1}}}, true)
	mustFeasible(solver.And{X: g2, Y: solver.Eq{X: iv.T, Y: solver.IntConst{Val: 2}}}, true)
	mustFeasible(solver.And{X: g1, Y: solver.Eq{X: iv.T, Y: solver.IntConst{Val: 2}}}, false)
	mustFeasible(solver.And{X: g2, Y: solver.Eq{X: iv.T, Y: solver.IntConst{Val: 1}}}, false)
	// The base constraint is still in force.
	mustFeasible(solver.Lt{X: n, Y: solver.IntConst{Val: -10}}, false)

	// A state that does not descend from base declines the merge.
	alien := State{PC: solver.PCTrue.And(g1), Mem: NewMemory()}
	if _, ok := x.mergeStates(nil, "t:0", base, []State{s1, alien}, 0); ok {
		t.Fatal("merging a state that does not extend base must decline")
	}
}
