package symexec

import (
	"fmt"

	"mix/internal/microc"
	"mix/internal/solver"
)

// boolValue reifies a condition formula as the integer 1/0.
func boolValue(f solver.Formula) Value {
	return mkITE(f, VInt{T: solver.IntConst{Val: 1}}, VInt{T: solver.IntConst{Val: 0}})
}

// evalExpr evaluates e, forking as needed.
func (x *Executor) evalExpr(st State, e microc.Expr, depth int) ([]evalOut, error) {
	switch e := e.(type) {
	case *microc.IntLit:
		return []evalOut{{st: st, v: VInt{T: solver.IntConst{Val: e.Val}}}}, nil

	case *microc.NullLit:
		return []evalOut{{st: st, v: VNull{}}}, nil

	case *microc.VarRef:
		switch ref := e.Ref.(type) {
		case *microc.VarDecl:
			obj := x.VarObj(ref)
			return []evalOut{{st: st, v: x.ReadCell(st, obj, "")}}, nil
		case *microc.FuncDef:
			return []evalOut{{st: st, v: VFunc{F: ref}}}, nil
		}
		return nil, fmt.Errorf("symexec: unresolved name %s", e.Name)

	case *microc.Unary:
		switch e.Op {
		case microc.OpDeref:
			outs, err := x.evalExpr(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			var result []evalOut
			for _, o := range outs {
				lvs := x.derefTargets(o.st, o.v, e.ExprPos(), e.X.String())
				for _, lv := range lvs {
					result = append(result, evalOut{st: lv.st, v: x.ReadCell(lv.st, lv.obj, lv.field)})
				}
			}
			return result, nil
		case microc.OpAddr:
			lvs, err := x.evalLV(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			var result []evalOut
			for _, lv := range lvs {
				result = append(result, evalOut{st: lv.st, v: VObj{Obj: lv.obj, Field: lv.field}})
			}
			return result, nil
		case microc.OpNot:
			conds, err := x.evalCond(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			var result []evalOut
			for _, c := range conds {
				result = append(result, evalOut{st: c.st, v: boolValue(solver.NewNot(c.f))})
			}
			return result, nil
		case microc.OpNeg:
			outs, err := x.evalExpr(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			var result []evalOut
			for _, o := range outs {
				t, ok := intOf(o.v)
				if !ok {
					x.report(o.st, Imprecision, e.ExprPos(), "negation of non-integer %s", o.v)
					result = append(result, evalOut{st: o.st, v: x.FreshInt("neg")})
					continue
				}
				result = append(result, evalOut{st: o.st, v: VInt{T: solver.Neg{X: t}}})
			}
			return result, nil
		}

	case *microc.Binary:
		switch e.Op {
		case microc.OpAdd, microc.OpSub:
			return x.evalArith(st, e, depth)
		default:
			conds, err := x.evalCond(st, e, depth)
			if err != nil {
				return nil, err
			}
			var result []evalOut
			for _, c := range conds {
				result = append(result, evalOut{st: c.st, v: boolValue(c.f)})
			}
			return result, nil
		}

	case *microc.Assign:
		outs, err := x.evalExpr(st, e.RHS, depth)
		if err != nil {
			return nil, err
		}
		var result []evalOut
		for _, o := range outs {
			lvs, err := x.evalLV(o.st, e.LHS, depth)
			if err != nil {
				return nil, err
			}
			for _, lv := range lvs {
				lv.st.Mem.Write(lv.obj, lv.field, o.v)
				result = append(result, evalOut{st: lv.st, v: o.v})
			}
		}
		return result, nil

	case *microc.Call:
		return x.evalCall(st, e, depth)

	case *microc.Field:
		lvs, err := x.evalLV(st, e, depth)
		if err != nil {
			return nil, err
		}
		var result []evalOut
		for _, lv := range lvs {
			result = append(result, evalOut{st: lv.st, v: x.ReadCell(lv.st, lv.obj, lv.field)})
		}
		return result, nil

	case *microc.Malloc:
		// Each execution of a malloc site yields a fresh object (the
		// symbolic executor is context-sensitive here, unlike the
		// pointer analysis).
		id := x.freshID()
		obj := &Object{
			ID:   id,
			Name: fmt.Sprintf("malloc#%d.%d", e.Site, id),
			Type: e.ElemType,
			Site: e.Site,
		}
		return []evalOut{{st: st, v: VObj{Obj: obj}}}, nil

	case *microc.Cast:
		return x.evalExpr(st, e.X, depth)
	}
	return nil, fmt.Errorf("symexec: cannot evaluate %T", e)
}

func (x *Executor) evalArith(st State, e *microc.Binary, depth int) ([]evalOut, error) {
	xs, err := x.evalExpr(st, e.X, depth)
	if err != nil {
		return nil, err
	}
	var result []evalOut
	for _, xo := range xs {
		ys, err := x.evalExpr(xo.st, e.Y, depth)
		if err != nil {
			return nil, err
		}
		for _, yo := range ys {
			tx, okx := intOf(xo.v)
			ty, oky := intOf(yo.v)
			if !okx || !oky {
				x.report(yo.st, Imprecision, e.ExprPos(), "arithmetic on non-integer values")
				result = append(result, evalOut{st: yo.st, v: x.FreshInt("arith")})
				continue
			}
			var t solver.Term
			if e.Op == microc.OpAdd {
				t = solver.Add{X: tx, Y: ty}
			} else {
				t = solver.Sub(tx, ty)
			}
			result = append(result, evalOut{st: yo.st, v: VInt{T: t}})
		}
	}
	return result, nil
}

// evalCall resolves and executes a call expression.
func (x *Executor) evalCall(st State, e *microc.Call, depth int) ([]evalOut, error) {
	// Direct call?
	if vr, ok := e.Fun.(*microc.VarRef); ok {
		if f, isFunc := vr.Ref.(*microc.FuncDef); isFunc {
			return x.evalCallTo(st, e, f, depth)
		}
	}
	// Indirect: evaluate the function expression, unwrapping (*f).
	funExpr := e.Fun
	if u, ok := funExpr.(*microc.Unary); ok && u.Op == microc.OpDeref {
		funExpr = u.X
	}
	fouts, err := x.evalExpr(st, funExpr, depth)
	if err != nil {
		return nil, err
	}
	var result []evalOut
	for _, fo := range fouts {
		cases := collectCases(fo.v)
		resolved := false
		for _, c := range cases {
			if vf, ok := c.leaf.(VFunc); ok {
				pc := fo.st.PC.And(c.g)
				if !x.feasible(fo.st, pc) {
					continue
				}
				resolved = true
				cst := fo.st.Clone()
				cst.PC = pc
				outs, err := x.evalCallTo(cst, e, vf.F, depth)
				if err != nil {
					return nil, err
				}
				result = append(result, outs...)
			}
		}
		if !resolved {
			// The paper's executor cannot call symbolic function
			// pointers; Case 4 wraps such calls in typed blocks.
			x.report(fo.st, UnsupportedFnPtr, e.ExprPos(), "call through symbolic function pointer %s", funExpr)
			result = append(result, evalOut{st: fo.st, v: VVoid{}})
		}
	}
	return result, nil
}

func (x *Executor) evalCallTo(st State, e *microc.Call, f *microc.FuncDef, depth int) ([]evalOut, error) {
	args := make([]Value, len(e.Args))
	states := []evalOut{{st: st, v: nil}}
	for i, argExpr := range e.Args {
		var next []evalOut
		for _, s := range states {
			outs, err := x.evalExpr(s.st, argExpr, depth)
			if err != nil {
				return nil, err
			}
			next = append(next, outs...)
		}
		if len(next) != 1 {
			// Multiple paths through an argument: execute the call on
			// each path with that path's argument value.
			var result []evalOut
			for _, s := range next {
				argsCopy := make([]Value, len(e.Args))
				copy(argsCopy, args)
				argsCopy[i] = s.v
				rest, err := x.evalCallRest(s.st, e, f, argsCopy, i+1, depth)
				if err != nil {
					return nil, err
				}
				result = append(result, rest...)
			}
			return result, nil
		}
		args[i] = next[0].v
		states = []evalOut{{st: next[0].st}}
	}
	return x.callFunction(states[0].st, f, args, depth, e.ExprPos())
}

// evalCallRest finishes evaluating arguments from index i onward, then
// performs the call.
func (x *Executor) evalCallRest(st State, e *microc.Call, f *microc.FuncDef, args []Value, i int, depth int) ([]evalOut, error) {
	if i >= len(e.Args) {
		return x.callFunction(st, f, args, depth, e.ExprPos())
	}
	outs, err := x.evalExpr(st, e.Args[i], depth)
	if err != nil {
		return nil, err
	}
	var result []evalOut
	for _, o := range outs {
		argsCopy := make([]Value, len(args))
		copy(argsCopy, args)
		argsCopy[i] = o.v
		rest, err := x.evalCallRest(o.st, e, f, argsCopy, i+1, depth)
		if err != nil {
			return nil, err
		}
		result = append(result, rest...)
	}
	return result, nil
}

// evalCond evaluates e as a branch condition formula.
func (x *Executor) evalCond(st State, e microc.Expr, depth int) ([]condOut, error) {
	switch e := e.(type) {
	case *microc.IntLit:
		return []condOut{{st: st, f: solver.BoolConst{Val: e.Val != 0}}}, nil
	case *microc.Unary:
		if e.Op == microc.OpNot {
			inner, err := x.evalCond(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			out := make([]condOut, len(inner))
			for i, c := range inner {
				out[i] = condOut{st: c.st, f: solver.NewNot(c.f)}
			}
			return out, nil
		}
	case *microc.Binary:
		switch e.Op {
		case microc.OpAnd, microc.OpOr:
			xs, err := x.evalCond(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			var out []condOut
			for _, xc := range xs {
				ys, err := x.evalCond(xc.st, e.Y, depth)
				if err != nil {
					return nil, err
				}
				for _, yc := range ys {
					var f solver.Formula
					if e.Op == microc.OpAnd {
						f = solver.NewAnd(xc.f, yc.f)
					} else {
						f = solver.NewOr(xc.f, yc.f)
					}
					out = append(out, condOut{st: yc.st, f: f})
				}
			}
			return out, nil
		case microc.OpEq, microc.OpNe, microc.OpLt, microc.OpGt, microc.OpLe, microc.OpGe:
			xs, err := x.evalExpr(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			var out []condOut
			for _, xo := range xs {
				ys, err := x.evalExpr(xo.st, e.Y, depth)
				if err != nil {
					return nil, err
				}
				for _, yo := range ys {
					f, err := x.compareFormula(yo.st, e, xo.v, yo.v)
					if err != nil {
						return nil, err
					}
					out = append(out, condOut{st: yo.st, f: f})
				}
			}
			return out, nil
		}
	}
	// Fallback: truthiness of the value.
	outs, err := x.evalExpr(st, e, depth)
	if err != nil {
		return nil, err
	}
	result := make([]condOut, len(outs))
	for i, o := range outs {
		result[i] = condOut{st: o.st, f: x.truthy(o.st, o.v, e.ExprPos())}
	}
	return result, nil
}

// truthy is the condition under which a value is "true" in C.
func (x *Executor) truthy(st State, v Value, pos microc.Pos) solver.Formula {
	if t, ok := intOf(v); ok {
		return solver.Neq(t, solver.IntConst{Val: 0})
	}
	switch v.(type) {
	case VObj, VFunc, VNull, VITE:
		return solver.NewNot(nullFormula(v))
	case VUnknown:
		return x.FreshBool("truthy")
	}
	x.report(st, Imprecision, pos, "condition on unmodeled value %s", v)
	return x.FreshBool("truthy")
}

// compareFormula builds the formula for a comparison of two values.
func (x *Executor) compareFormula(st State, e *microc.Binary, a, b Value) (solver.Formula, error) {
	ta, okA := intOf(a)
	tb, okB := intOf(b)
	switch e.Op {
	case microc.OpEq, microc.OpNe:
		var f solver.Formula
		if okA && okB {
			f = solver.Eq{X: ta, Y: tb}
		} else {
			f = eqFormula(a, b)
		}
		if e.Op == microc.OpNe {
			f = solver.NewNot(f)
		}
		return f, nil
	default:
		if !okA || !okB {
			x.report(st, Imprecision, e.ExprPos(), "ordering comparison on non-integers")
			return x.FreshBool("cmp"), nil
		}
		switch e.Op {
		case microc.OpLt:
			return solver.Lt{X: ta, Y: tb}, nil
		case microc.OpGt:
			return solver.Gt(ta, tb), nil
		case microc.OpLe:
			return solver.Le{X: ta, Y: tb}, nil
		case microc.OpGe:
			return solver.Ge(ta, tb), nil
		}
	}
	return nil, fmt.Errorf("symexec: bad comparison %v", e.Op)
}

// evalLV resolves an lvalue to object cells.
func (x *Executor) evalLV(st State, e microc.Expr, depth int) ([]lvOut, error) {
	switch e := e.(type) {
	case *microc.VarRef:
		if d, ok := e.Ref.(*microc.VarDecl); ok {
			return []lvOut{{st: st, obj: x.VarObj(d)}}, nil
		}
		return nil, fmt.Errorf("symexec: %s is not an lvalue", e.Name)
	case *microc.Unary:
		if e.Op == microc.OpDeref {
			outs, err := x.evalExpr(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			var result []lvOut
			for _, o := range outs {
				result = append(result, x.derefTargets(o.st, o.v, e.ExprPos(), e.X.String())...)
			}
			return result, nil
		}
	case *microc.Field:
		if e.Arrow {
			outs, err := x.evalExpr(st, e.X, depth)
			if err != nil {
				return nil, err
			}
			var result []lvOut
			for _, o := range outs {
				for _, lv := range x.derefTargets(o.st, o.v, e.ExprPos(), e.X.String()) {
					result = append(result, lvOut{st: lv.st, obj: lv.obj, field: e.Name})
				}
			}
			return result, nil
		}
		inner, err := x.evalLV(st, e.X, depth)
		if err != nil {
			return nil, err
		}
		result := make([]lvOut, len(inner))
		for i, lv := range inner {
			result[i] = lvOut{st: lv.st, obj: lv.obj, field: e.Name}
		}
		return result, nil
	case *microc.Cast:
		return x.evalLV(st, e.X, depth)
	}
	return nil, fmt.Errorf("symexec: %T is not an lvalue", e)
}

// ptrCase is one leaf of a conditional pointer value.
type ptrCase struct {
	g    solver.Formula
	leaf Value
}

// collectCases flattens a VITE tree into guarded leaves.
func collectCases(v Value) []ptrCase {
	switch v := v.(type) {
	case VITE:
		var out []ptrCase
		for _, c := range collectCases(v.X) {
			out = append(out, ptrCase{g: solver.NewAnd(v.G, c.g), leaf: c.leaf})
		}
		for _, c := range collectCases(v.Y) {
			out = append(out, ptrCase{g: solver.NewAnd(solver.NewNot(v.G), c.g), leaf: c.leaf})
		}
		return out
	}
	return []ptrCase{{g: solver.True, leaf: v}}
}

// derefTargets resolves a pointer value to object cells, reporting a
// null dereference when the null case is feasible. The returned states
// carry the per-target path conditions.
func (x *Executor) derefTargets(st State, v Value, pos microc.Pos, what string) []lvOut {
	cases := collectCases(v)
	nullG := solver.False
	var objCases []ptrCase
	for _, c := range cases {
		switch leaf := c.leaf.(type) {
		case VNull:
			nullG = solver.NewOr(nullG, c.g)
		case VObj:
			objCases = append(objCases, c)
		case VInt:
			nullG = solver.NewOr(nullG, solver.NewAnd(c.g, solver.Eq{X: leaf.T, Y: solver.IntConst{Val: 0}}))
			x.report(st, Imprecision, pos, "dereference of integer value %s", what)
		default:
			x.report(st, Imprecision, pos, "dereference of unmodeled value %s", what)
		}
	}
	if x.feasible(st, st.PC, nullG) {
		x.report(st, NullDeref, pos, "dereference of possibly-null pointer %s", what)
	}
	var out []lvOut
	survivors := 0
	for _, c := range objCases {
		pc := st.PC.And(c.g)
		if !x.feasible(st, pc) {
			continue
		}
		survivors++
		cst := st
		if survivors > 1 {
			cst = st.Clone()
		}
		cst.PC = pc
		obj := c.leaf.(VObj)
		field := obj.Field
		out = append(out, lvOut{st: cst, obj: obj.Obj, field: field})
	}
	return out
}
