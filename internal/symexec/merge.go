package symexec

import (
	"sort"

	"mix/internal/engine"
	"mix/internal/microc"
	"mix/internal/obs"
	"mix/internal/solver"
)

// This file implements veritesting-style state merging (DESIGN.md
// section 12). At the join point of a conditional whose arms both stay
// feasible, the arm states are folded back into ONE continuation state:
// cells the arms agree on keep their plain value, diverging cells
// become guarded ite values, and the path condition becomes
// base ∧ (g_then ∨ g_else) where each guard is the arm's PC suffix
// relative to the fork point. A ladder of k independent diamonds then
// explores O(k) states instead of O(2^k) paths, at the cost of larger
// solver queries — which the ite-elimination lowering in the solver and
// the divergence cap keep bounded.

// mergeCap returns the configured joins-mode divergence cap.
func (x *Executor) mergeCap() int {
	if x.MergeCap > 0 {
		return x.MergeCap
	}
	return 8
}

// mergeIf executes both feasible arms of a conditional sequentially on
// the current task (the merged continuation is one task, so there is
// nothing to parallelize at this fork) and attempts a join-point merge
// of the live outgoing flows. Returned and infeasible flows always
// pass through unmerged; if the merge is declined — wrong arm shape
// for joins mode, or too many diverging cells — the forked flows are
// returned exactly as the fork-only executor would produce them.
func (x *Executor) mergeIf(st State, s *microc.IfStmt, thenPC, elsePC *solver.PC, depth int) ([]flowOutcome, error) {
	base := st.PC
	// Same span tree shape as the sequential and parallel forks, so
	// traces keep matching across fork strategies; the merged
	// continuation proceeds on the parent span after the join.
	st.span.Fork(2)
	tst := st.Clone()
	tst.span = st.span.Child()
	tst.PC = thenPC
	thenFlows, err := x.execStmt(tst, s.Then, depth)
	if err != nil {
		return nil, err
	}
	est := st
	est.PC = elsePC
	est.span = st.span.Child()
	elseFlows := []flowOutcome{{st: est}}
	if s.Else != nil {
		elseFlows, err = x.execStmt(est, s.Else, depth)
		if err != nil {
			return nil, err
		}
	}
	st.span.Join()

	var passthrough []flowOutcome
	var live []State
	thenLive, elseLive := 0, 0
	for i, fl := range append(thenFlows[:len(thenFlows):len(thenFlows)], elseFlows...) {
		if fl.returned || fl.st.PC.Dead() {
			passthrough = append(passthrough, fl)
			continue
		}
		live = append(live, fl.st)
		if i < len(thenFlows) {
			thenLive++
		} else {
			elseLive++
		}
	}
	mergeable := len(live) >= 2
	if x.MergeMode == engine.MergeJoins && (thenLive != 1 || elseLive != 1) {
		// joins mode only rejoins the canonical diamond: one live path
		// per arm. Aggressive mode folds whatever reached the join.
		mergeable = false
	}
	if mergeable {
		maxDiv := x.mergeCap()
		if x.MergeMode == engine.MergeAggressive {
			maxDiv = 0
		}
		if merged, ok := x.mergeStates(st.span, s.StmtPos().String(), base, live, maxDiv); ok {
			return append(passthrough, flowOutcome{st: merged}), nil
		}
	}
	return append(thenFlows, elseFlows...), nil
}

// mergeStates folds sibling states — all extending base, all feasible —
// into one guarded state. maxDiv > 0 declines the merge when more than
// that many cells diverge (the query-count heuristic: every diverging
// cell becomes an ite that rides along in each downstream query that
// touches it, so the cap bounds the estimated per-query growth).
// Returns false, leaving the inputs usable as separate paths, when the
// states do not share base or the cap is exceeded.
func (x *Executor) mergeStates(span *obs.Span, site string, base *solver.PC, states []State, maxDiv int) (State, bool) {
	if len(states) < 2 {
		return State{}, false
	}
	guards := make([]solver.Formula, len(states))
	for i, s := range states {
		suf, ok := s.PC.Suffix(base)
		if !ok {
			return State{}, false
		}
		guards[i] = solver.Conj(suf...)
	}
	// Union of initialized cells across the arms, in deterministic
	// (object ID, field) order.
	seen := map[cellKey]bool{}
	var keys []cellKey
	for _, s := range states {
		s.Mem.Cells(func(obj *Object, field string, _ Value) {
			k := cellKey{obj, field}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].obj.ID != keys[j].obj.ID {
			return keys[i].obj.ID < keys[j].obj.ID
		}
		return keys[i].field < keys[j].field
	})
	// Read every union cell in every arm — materializing, via the usual
	// lazy initialization, exactly what that arm would observe on its
	// next access — then split the cells into agreeing and diverging.
	var diverging []cellKey
	vals := map[cellKey][]Value{}
	collapsed := 0
	for _, k := range keys {
		vs := make([]Value, len(states))
		for i, s := range states {
			vs[i] = x.ReadCell(s, k.obj, k.field)
		}
		same := true
		for i := 1; i < len(vs); i++ {
			if !valueEq(vs[0], vs[i]) {
				same = false
				break
			}
		}
		if same {
			collapsed++
			continue
		}
		diverging = append(diverging, k)
		vals[k] = vs
	}
	if maxDiv > 0 && len(diverging) > maxDiv {
		return State{}, false
	}
	merged := states[0].Clone()
	merged.PC = base.And(solver.Disj(guards...))
	merged.span = span
	for _, k := range diverging {
		vs := vals[k]
		acc := vs[len(vs)-1]
		for i := len(vs) - 2; i >= 0; i-- {
			acc = mergeVal(guards[i], vs[i], acc)
		}
		merged.Mem.Write(k.obj, k.field, acc)
	}
	x.mu.Lock()
	x.Stats.Merges++
	x.Stats.MergedCells += len(diverging)
	x.Stats.CollapsedCells += collapsed
	x.mu.Unlock()
	span.Merge(site, int64(len(diverging)), int64(collapsed))
	return merged, true
}

// mergeVal folds two arm values of one cell under guard g. Integer-like
// pairs merge at the term level (solver.Ite), which keeps downstream
// arithmetic working on the merged value; everything else merges at
// the value level (VITE), which the pointer machinery already handles.
func mergeVal(g solver.Formula, a, b Value) Value {
	if ta, okA := intOf(a); okA {
		if tb, okB := intOf(b); okB {
			return VInt{T: solver.NewIte(g, ta, tb)}
		}
	}
	return mkITE(g, a, b)
}
