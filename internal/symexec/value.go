// Package symexec is MIXY's symbolic executor for MicroC, standing in
// for Otter (Reisner et al. 2010) in the paper's prototype. It
// executes functions path by path in the style of KLEE: path
// conditions are solver formulas, conditionals fork after an SMT
// feasibility check, memory is a map from abstract objects to cell
// values initialized lazily and incrementally (Section 4.2), loops are
// bounded, and a null pointer is the value 0 — dereferencing a
// possibly-null pointer on a feasible path produces a report.
//
// Like the paper's executor it does NOT support calling symbolic
// function pointers; such calls produce an UnsupportedFnPtr report,
// which is exactly the limitation that motivates Case 4's typed block.
package symexec

import (
	"fmt"

	"mix/internal/microc"
	"mix/internal/obs"
	"mix/internal/persist"
	"mix/internal/pointer"
	"mix/internal/solver"
)

// Value is a symbolic MicroC value.
type Value interface {
	isValue()
	String() string
}

// VInt is an integer value represented as a solver term.
type VInt struct{ T solver.Term }

// VNull is the null pointer (the value 0).
type VNull struct{}

// VObj is a pointer to a cell of an abstract object: the scalar cell
// when Field is "", or a named field cell.
type VObj struct {
	Obj   *Object
	Field string
}

// VITE is the conditional value g ? X : Y — the paper's
// "(α:bool) ? loc : 0" shape used to translate possibly-null pointers.
type VITE struct {
	G    solver.Formula
	X, Y Value
}

// VFunc is a concrete function reference.
type VFunc struct{ F *microc.FuncDef }

// VStruct is a struct rvalue: a pointer-free bundle of field values.
type VStruct struct {
	Name   string
	Fields map[string]Value
}

// VUnknown is an opaque value of a type the executor cannot model
// precisely (e.g. a symbolic function pointer from an arbitrary
// context). Using it where precision is required produces a report.
type VUnknown struct{ Why string }

// VVoid is the result of a void call.
type VVoid struct{}

func (VInt) isValue()     {}
func (VNull) isValue()    {}
func (VObj) isValue()     {}
func (VITE) isValue()     {}
func (VFunc) isValue()    {}
func (VStruct) isValue()  {}
func (VUnknown) isValue() {}
func (VVoid) isValue()    {}

func (v VInt) String() string { return v.T.String() }
func (VNull) String() string  { return "NULL" }
func (v VObj) String() string {
	if v.Field == "" {
		return "&" + v.Obj.Name
	}
	return "&" + v.Obj.Name + "." + v.Field
}
func (v VITE) String() string {
	return "(" + v.G.String() + " ? " + v.X.String() + " : " + v.Y.String() + ")"
}
func (v VFunc) String() string    { return "&" + v.F.Name }
func (v VStruct) String() string  { return "struct " + v.Name + "{...}" }
func (v VUnknown) String() string { return "<unknown:" + v.Why + ">" }
func (VVoid) String() string      { return "void" }

// Object is an abstract memory object. Objects have identity; their
// cell contents live in a Memory so that forked paths do not share
// mutations.
type Object struct {
	ID   int
	Name string
	// Type is the type of the object's scalar cell, or the struct
	// type for struct objects.
	Type microc.Type
	// Loc is the abstract location this object materializes, when it
	// corresponds to a program location (drives lazy initialization
	// and the symbolic-to-typed translation).
	Loc    pointer.Loc
	HasLoc bool
	// Site is the malloc site for heap objects (0 = not a heap
	// object); used to map heap cells back to qualifier variables.
	Site int
}

func (o *Object) String() string { return o.Name }

// cellKey addresses one cell of one object.
type cellKey struct {
	obj   *Object
	field string
}

// hashCell hashes a cell address deterministically: by the object's
// stable ID, never its pointer, so HAMT layout — and thus every
// iteration order downstream — is identical across runs and across
// worker schedules.
func hashCell(k cellKey) uint64 {
	return persist.HashU64(uint64(k.obj.ID)) ^ persist.HashString(k.field)
}

// Memory is the symbolic store: a mutable head over a persistent
// (structurally shared) cell map. Writes swap the immutable root in
// place — callers that share a *Memory pointer observe them, exactly
// like the seed's flat map — while Clone is O(1): the fork and its
// parent share every unchanged cell and diverge copy-on-write,
// path-copying only the O(log n) nodes on a written path.
type Memory struct {
	cells persist.Map[cellKey, Value]
}

// memClones / memSharedCells / memWrites instrument fork cost for the
// benchmarks: memSharedCells counts cells a clone shared structurally
// — each one a cell the seed's eager copy would have duplicated. They
// live in the process-wide metrics registry (obs.Default) under
// symexec.mem.*; being monotone, concurrent readers take before/after
// deltas instead of resetting.
var (
	memClones      = obs.Default.Counter("symexec.mem.clones")
	memSharedCells = obs.Default.Counter("symexec.mem.shared_cells")
	memWrites      = obs.Default.Counter("symexec.mem.writes")
)

// MemoryStats reads the process-lifetime (clones, cells shared across
// those clones, writes) totals. The counters are monotone: callers
// measuring one run subtract a before-snapshot.
func MemoryStats() (clones, sharedCells, writes int64) {
	return memClones.Value(), memSharedCells.Value(), memWrites.Value()
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{cells: persist.NewMap[cellKey, Value](hashCell)}
}

// Clone forks the memory in O(1); both copies share all current cells.
func (m *Memory) Clone() *Memory {
	memClones.Add(1)
	memSharedCells.Add(int64(m.cells.Len()))
	return &Memory{cells: m.cells}
}

// Read returns the cell value, if initialized.
func (m *Memory) Read(obj *Object, field string) (Value, bool) {
	return m.cells.Get(cellKey{obj, field})
}

// Write sets a cell (copy-on-write underneath; siblings forked earlier
// are unaffected).
func (m *Memory) Write(obj *Object, field string, v Value) {
	memWrites.Add(1)
	m.cells = m.cells.Set(cellKey{obj, field}, v)
}

// Delete removes a cell, if present.
func (m *Memory) Delete(obj *Object, field string) {
	m.cells = m.cells.Delete(cellKey{obj, field})
}

// Len reports the number of initialized cells.
func (m *Memory) Len() int { return m.cells.Len() }

// Cells iterates over all initialized cells in deterministic (hash)
// order; callers needing a semantic order still sort.
func (m *Memory) Cells(f func(obj *Object, field string, v Value)) {
	m.cells.Range(func(k cellKey, v Value) bool {
		f(k.obj, k.field, v)
		return true
	})
}

// reportSink collects the reports emitted along one scheduler task.
// Each parallel branch gets its own sink; joins splice the then-sink
// before the else-sink into the parent, so the root sink ends up with
// reports in canonical sequential order no matter which branch
// finished first.
type reportSink struct {
	reports []Report
}

// State is one symbolic execution path: a path condition and memory.
// The PC is an incremental cons list (nil = true): extending it at a
// fork shares the whole prefix with the sibling, and the engine's
// solver pipeline consumes it conjunct by conjunct.
type State struct {
	PC  *solver.PC
	Mem *Memory
	// rs is the task-local report sink under parallel exploration (nil
	// when running sequentially).
	rs *reportSink
	// forkDepth counts conditional forks along this path; the engine
	// charges it against the fork-depth budget.
	forkDepth int
	// span is this path's node in the trace tree (nil when tracing is
	// off). Forks hand each branch a child span; Clone shares the
	// parent's span until the fork site reassigns it.
	span *obs.Span
}

// Clone forks the state.
func (s State) Clone() State {
	c := s
	c.Mem = s.Mem.Clone()
	return c
}

// With returns the state with the path condition extended by f.
func (s State) With(f solver.Formula) State {
	c := s
	c.PC = s.PC.And(f)
	return c
}

// NullFormula returns the condition under which v is the null pointer
// (exported for MIXY's symbolic-to-typed translation: Section 4.1 asks
// whether g ∧ (s = 0) is satisfiable).
func NullFormula(v Value) solver.Formula { return nullFormula(v) }

// nullFormula returns the condition under which v is the null pointer.
func nullFormula(v Value) solver.Formula {
	switch v := v.(type) {
	case VNull:
		return solver.True
	case VObj, VFunc:
		return solver.False
	case VITE:
		return solver.NewOr(
			solver.NewAnd(v.G, nullFormula(v.X)),
			solver.NewAnd(solver.NewNot(v.G), nullFormula(v.Y)),
		)
	case VInt:
		// An integer used as a pointer: null iff zero.
		return solver.Eq{X: v.T, Y: solver.IntConst{Val: 0}}
	case VUnknown:
		// Unknown values conservatively may be null.
		return solver.BoolVar{Name: "unknown_null"}
	}
	return solver.False
}

// eqFormula returns the condition under which two pointer-like values
// are equal.
func eqFormula(a, b Value) solver.Formula {
	switch a := a.(type) {
	case VITE:
		return solver.NewOr(
			solver.NewAnd(a.G, eqFormula(a.X, b)),
			solver.NewAnd(solver.NewNot(a.G), eqFormula(a.Y, b)),
		)
	}
	switch b := b.(type) {
	case VITE:
		return solver.NewOr(
			solver.NewAnd(b.G, eqFormula(a, b.X)),
			solver.NewAnd(solver.NewNot(b.G), eqFormula(a, b.Y)),
		)
	}
	switch a := a.(type) {
	case VNull:
		return nullFormula(b)
	case VObj:
		if bo, ok := b.(VObj); ok {
			if a.Obj == bo.Obj && a.Field == bo.Field {
				return solver.True
			}
		}
		return solver.False
	case VFunc:
		if bf, ok := b.(VFunc); ok && bf.F == a.F {
			return solver.True
		}
		return solver.False
	case VInt:
		if bi, ok := b.(VInt); ok {
			return solver.Eq{X: a.T, Y: bi.T}
		}
		if _, ok := b.(VNull); ok {
			return solver.Eq{X: a.T, Y: solver.IntConst{Val: 0}}
		}
		return solver.False
	}
	if _, ok := a.(VUnknown); ok {
		return solver.BoolVar{Name: "unknown_eq"}
	}
	if _, ok := b.(VUnknown); ok {
		return solver.BoolVar{Name: "unknown_eq"}
	}
	if _, ok := b.(VNull); ok {
		return nullFormula(a)
	}
	return solver.False
}

// valueEq reports structural equality of two values. State merging
// uses it to collapse cells the arms agree on back to a plain value
// instead of a degenerate ite.
func valueEq(a, b Value) bool {
	switch a := a.(type) {
	case VInt:
		b, ok := b.(VInt)
		return ok && solver.TermEq(a.T, b.T)
	case VNull:
		_, ok := b.(VNull)
		return ok
	case VVoid:
		_, ok := b.(VVoid)
		return ok
	case VObj:
		b, ok := b.(VObj)
		return ok && a.Obj == b.Obj && a.Field == b.Field
	case VFunc:
		b, ok := b.(VFunc)
		return ok && a.F == b.F
	case VUnknown:
		b, ok := b.(VUnknown)
		return ok && a.Why == b.Why
	case VITE:
		b, ok := b.(VITE)
		return ok && solver.FormulaEq(a.G, b.G) && valueEq(a.X, b.X) && valueEq(a.Y, b.Y)
	case VStruct:
		b, ok := b.(VStruct)
		if !ok || a.Name != b.Name || len(a.Fields) != len(b.Fields) {
			return false
		}
		for k, v := range a.Fields {
			bv, ok := b.Fields[k]
			if !ok || !valueEq(v, bv) {
				return false
			}
		}
		return true
	}
	return false
}

// mkITE builds a conditional value with constant folding.
func mkITE(g solver.Formula, x, y Value) Value {
	if c, ok := g.(solver.BoolConst); ok {
		if c.Val {
			return x
		}
		return y
	}
	return VITE{G: g, X: x, Y: y}
}

// intOf coerces a value to an integer term, or reports failure.
func intOf(v Value) (solver.Term, bool) {
	switch v := v.(type) {
	case VInt:
		return v.T, true
	case VNull:
		return solver.IntConst{Val: 0}, true
	}
	return nil, false
}

var _ = fmt.Sprintf
