package symexec

import (
	"strings"
	"testing"
)

func TestStructLocalDirectFields(t *testing.T) {
	_, outs := run(t, `
struct pt { int x; int y; };
int f(void) {
  struct pt p;
  p.x = 3;
  p.y = 4;
  return p.x + p.y;
}
`, "f")
	if len(outs) != 1 || outs[0].Ret.String() != "(3 + 4)" {
		t.Fatalf("got %v", outs)
	}
}

func TestPointerTruthiness(t *testing.T) {
	// if (p) is the null test in C.
	x, _ := run(t, `
void sink(int *nonnull q) { return; }
int f(int *p) {
  if (p) sink(p);
  return 0;
}
`, "f")
	if len(x.ReportsOf(NullArg)) != 0 {
		t.Fatalf("if(p) must guard the call: %v", x.Reports)
	}
}

func TestNegationAndSubtraction(t *testing.T) {
	_, outs := run(t, `
int f(void) {
  int a = -3;
  return -a - 1;
}
`, "f")
	if len(outs) != 1 {
		t.Fatalf("paths = %d", len(outs))
	}
	if !strings.Contains(outs[0].Ret.String(), "-") {
		t.Fatalf("ret = %s", outs[0].Ret)
	}
}

func TestReturnInsideLoop(t *testing.T) {
	_, outs := run(t, `
int f(void) {
  int i = 0;
  while (i < 10) {
    if (i == 3) return i;
    i = i + 1;
  }
  return -1;
}
`, "f")
	if len(outs) != 1 {
		t.Fatalf("want 1 path (the solver prunes the rest), got %d", len(outs))
	}
	// The executor does not fold arithmetic: i is the unfolded sum.
	if outs[0].Ret.String() != "(((0 + 1) + 1) + 1)" {
		t.Fatalf("ret = %s", outs[0].Ret)
	}
}

func TestVoidCallStatement(t *testing.T) {
	x, outs := run(t, `
int g;
void bump(void) { g = g + 1; }
int f(void) {
  bump();
  bump();
  return g;
}
`, "f")
	if len(outs) != 1 {
		t.Fatalf("paths = %d", len(outs))
	}
	if len(x.Reports) != 0 {
		t.Fatalf("reports: %v", x.Reports)
	}
}

func TestPointerEqualityOfAliases(t *testing.T) {
	_, outs := run(t, `
int g;
int f(void) {
  int *p = &g;
  int *q = &g;
  if (p == q) return 1;
  return 0;
}
`, "f")
	if len(outs) != 1 || outs[0].Ret.String() != "1" {
		t.Fatalf("aliases must compare equal: %v", outs)
	}
}

func TestDerefThroughCast(t *testing.T) {
	x, outs := run(t, `
int f(void) {
  int *p = malloc(sizeof(int));
  *p = 5;
  return *((int *) p);
}
`, "f")
	if len(outs) != 1 || outs[0].Ret.String() != "5" {
		t.Fatalf("got %v", outs)
	}
	if len(x.Reports) != 0 {
		t.Fatalf("reports: %v", x.Reports)
	}
}

func TestElseLessIf(t *testing.T) {
	_, outs := run(t, `
int f(int n) {
  int r = 0;
  if (n > 0) r = 1;
  return r;
}
`, "f")
	if len(outs) != 2 {
		t.Fatalf("paths = %d", len(outs))
	}
}

func TestConditionalNullFromBothArms(t *testing.T) {
	// p gets NULL on one path only; the deref afterwards warns, and
	// the guarded variant does not.
	x, _ := run(t, `
int f(int n) {
  int *p = malloc(sizeof(int));
  if (n > 0) p = NULL;
  return *p;
}
`, "f")
	if len(x.ReportsOf(NullDeref)) == 0 {
		t.Fatalf("expected warning: %v", x.Reports)
	}
	x2, _ := run(t, `
int f(int n) {
  int *p = malloc(sizeof(int));
  if (n > 0) p = NULL;
  if (p != NULL) return *p;
  return 0;
}
`, "f")
	if len(x2.ReportsOf(NullDeref)) != 0 {
		t.Fatalf("guarded deref must not warn: %v", x2.Reports)
	}
}

func TestDoubleDereference(t *testing.T) {
	x, outs := run(t, `
int f(void) {
  int *p = malloc(sizeof(int));
  int **pp = &p;
  *p = 9;
  return **pp;
}
`, "f")
	if len(outs) != 1 || outs[0].Ret.String() != "9" {
		t.Fatalf("got %v", outs)
	}
	if len(x.Reports) != 0 {
		t.Fatalf("reports: %v", x.Reports)
	}
}

func TestNullComparisonBothOrders(t *testing.T) {
	x, _ := run(t, `
int f(int *p) {
  if (NULL == p) return 0;
  return *p;
}
`, "f")
	if len(x.ReportsOf(NullDeref)) != 0 {
		t.Fatalf("NULL == p guard must work: %v", x.Reports)
	}
}
