package symexec

import (
	"sort"
	"testing"

	"mix/internal/engine"
	"mix/internal/pointer"
)

// Tests for the call-evaluation paths (evalCall / evalCallTo /
// evalCallRest): argument order and state threading, arguments whose
// evaluation forks, function pointers resolving to more than one
// target, and recursion against the depth bound.

func TestArgumentEvaluationOrder(t *testing.T) {
	// C-style left-to-right with state threading: bump() runs before
	// the second argument reads g0, so both arguments see the bumped
	// value (0 + 1) — a stale read would leave the second at 0.
	_, outs := run(t, `
int g0;
int bump(void) { g0 = g0 + 1; return g0; }
int add(int a, int b) { return a + b; }
int f(void) {
  g0 = 0;
  return add(bump(), g0);
}
`, "f")
	if len(outs) != 1 {
		t.Fatalf("paths = %d", len(outs))
	}
	if got := outs[0].Ret.String(); got != "((0 + 1) + (0 + 1))" {
		t.Fatalf("ret = %s, want ((0 + 1) + (0 + 1)): second argument read a stale global", got)
	}
}

func TestForkingArgumentForksCall(t *testing.T) {
	// abs_(n) forks, so evalCallTo must hand the remaining arguments
	// to evalCallRest and run the call once per argument path.
	_, outs := run(t, `
int abs_(int n) { if (n < 0) { return 0 - n; } return n; }
int add(int a, int b) { return a + b; }
int f(int n) { return add(abs_(n), 1); }
`, "f")
	if len(outs) != 2 {
		t.Fatalf("paths = %d, want one call per argument path", len(outs))
	}
}

func TestBothArgumentsForking(t *testing.T) {
	// Two forking arguments compose: evalCallRest recurses over the
	// second argument under each path of the first, and each of the
	// four (sign of n) x (sign of m) combinations keeps the argument
	// values from its own path.
	_, outs := run(t, `
int abs_(int n) { if (n < 0) { return 0 - n; } return n; }
int add(int a, int b) { return a + b; }
int f(int n, int m) { return add(abs_(n), abs_(m)); }
`, "f")
	if len(outs) != 4 {
		t.Fatalf("paths = %d, want 4 argument-path combinations", len(outs))
	}
}

func TestFnPointerForkedTargets(t *testing.T) {
	// The pointer is concrete on each forked path; the indirect call
	// must resolve per path without an UnsupportedFnPtr report.
	x, outs := run(t, `
int r0;
void one(void) { r0 = 1; }
void two(void) { r0 = 2; }
fnptr cb;
int f(int n) {
  if (n > 0) { cb = one; } else { cb = two; }
  (*cb)();
  return r0;
}
`, "f")
	if len(x.ReportsOf(UnsupportedFnPtr)) != 0 {
		t.Fatalf("concrete per-path fn ptr should resolve: %v", x.Reports)
	}
	rets := retStrings(outs)
	if len(rets) != 2 || rets[0] != "1" || rets[1] != "2" {
		t.Fatalf("returns = %v, want [1 2]", rets)
	}
}

func TestFnPointerMergedTargets(t *testing.T) {
	// Under joins-mode merging the two assignments fold into one
	// guarded value, so a single state's call must enumerate the
	// cases, check each guard's feasibility, and execute both
	// targets.
	x, outs := runMerged(t, `
int r0;
void one(void) { r0 = 1; }
void two(void) { r0 = 2; }
fnptr cb;
int f(int n) {
  if (n > 0) { cb = one; } else { cb = two; }
  (*cb)();
  return r0;
}
`, "f", engine.MergeJoins, 0)
	if len(x.ReportsOf(UnsupportedFnPtr)) != 0 {
		t.Fatalf("merged fn ptr cases should resolve: %v", x.Reports)
	}
	rets := retStrings(outs)
	if len(rets) != 2 || rets[0] != "1" || rets[1] != "2" {
		t.Fatalf("returns = %v, want both targets executed: [1 2]", rets)
	}
}

func TestFnPointerInfeasibleTargetPruned(t *testing.T) {
	// Both branches assign, but the path condition at the call site
	// contradicts the `two` case: only `one` may run.
	_, outs := runMerged(t, `
int r0;
void one(void) { r0 = 1; }
void two(void) { r0 = 2; }
fnptr cb;
int f(int n) {
  if (n > 0) { cb = one; } else { cb = two; }
  if (n > 5) { (*cb)(); return r0; }
  return 0;
}
`, "f", engine.MergeJoins, 0)
	for _, o := range outs {
		if o.Ret.String() == "2" {
			t.Fatalf("infeasible target executed: %v", outs)
		}
	}
}

func TestRecursionDepthBoundDegrades(t *testing.T) {
	// Unbounded recursion must hit MaxDepth and degrade to an
	// Imprecision report with a havoc return — never crash or hang.
	prog := mustParse(`
int r(int n) {
  if (n > 0) { return r(n - 1) + 1; }
  return 0;
}
int f(int n) { return r(n); }
`)
	x := New(prog, pointer.Analyze(prog))
	x.MaxDepth = 4
	outs, err := x.Run("f")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(outs) == 0 {
		t.Fatal("no outcomes survived the depth bound")
	}
	if !hasReport(x, Imprecision, "call depth bound reached at r") {
		t.Fatalf("expected depth-bound imprecision, got %v", x.Reports)
	}
}

func TestSelfRecursionAlwaysBounded(t *testing.T) {
	// Recursion with no reachable base case: every path ends at the
	// bound, and each one still produces an outcome.
	prog := mustParse(`
int r(int n) { return r(n); }
int f(int n) { return r(n); }
`)
	x := New(prog, pointer.Analyze(prog))
	x.MaxDepth = 3
	outs, err := x.Run("f")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("paths = %d, want 1", len(outs))
	}
	if !hasReport(x, Imprecision, "call depth bound reached at r") {
		t.Fatalf("expected depth-bound imprecision, got %v", x.Reports)
	}
}

func retStrings(outs []Outcome) []string {
	var rets []string
	for _, o := range outs {
		rets = append(rets, o.Ret.String())
	}
	sort.Strings(rets)
	return rets
}
