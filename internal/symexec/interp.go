package symexec

import (
	"errors"
	"fmt"

	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/microc"
	"mix/internal/solver"
)

// flowOutcome is the result of executing a statement along one path.
type flowOutcome struct {
	st       State
	returned bool
	ret      Value
}

// evalOut is the result of evaluating an expression along one path.
type evalOut struct {
	st State
	v  Value
}

// condOut is a condition evaluated to a formula along one path.
type condOut struct {
	st State
	f  solver.Formula
}

// lvOut is a resolved lvalue (an object cell) along one path.
type lvOut struct {
	st    State
	obj   *Object
	field string
}

// Run executes the entry function from an arbitrary context: globals
// get their static initializers, parameters are lazily initialized.
func (x *Executor) Run(entry string) ([]Outcome, error) {
	f, ok := x.Prog.Func(entry)
	if !ok {
		return nil, fmt.Errorf("symexec: no function %s", entry)
	}
	st := State{PC: solver.PCTrue, Mem: NewMemory()}
	var err error
	st, err = x.InitGlobals(st)
	if err != nil {
		return nil, err
	}
	return x.RunFunc(f, st, nil)
}

// InitGlobals executes global initializers in st.
func (x *Executor) InitGlobals(st State) (State, error) {
	for _, g := range x.Prog.Globals {
		if g.Init == nil {
			continue
		}
		outs, err := x.evalExpr(st, g.Init, 0)
		if err != nil {
			return st, err
		}
		if len(outs) != 1 {
			return st, fmt.Errorf("symexec: global initializer of %s forked", g.Name)
		}
		st = outs[0].st
		st.Mem.Write(x.VarObj(g), "", outs[0].v)
	}
	return st, nil
}

// RunFunc executes f from state st with the given arguments (nil args
// leave parameters to lazy initialization).
func (x *Executor) RunFunc(f *microc.FuncDef, st State, args []Value) ([]Outcome, error) {
	if st.span == nil {
		// One trace root per analyzed function; callers create roots in
		// deterministic (program) order, so root numbering is stable.
		st.span = x.Engine.Tracer().Root(f.Name)
	}
	var root *reportSink
	if x.parallel() && st.rs == nil {
		// Reports from parallel branches are collected in task-local
		// sinks and merged in branch order; the root sink is flushed
		// (with the usual online dedup) once exploration finishes, so
		// the Reports sequence matches the sequential executor's.
		root = &reportSink{}
		st.rs = root
	}
	outs, err := x.protectedCall(st, f, args)
	if root != nil {
		x.flushSink(root)
	}
	if err != nil {
		return nil, err
	}
	result := make([]Outcome, len(outs))
	for i, o := range outs {
		result[i] = Outcome{St: o.st, Ret: o.v}
		result[i].St.rs = nil
	}
	x.mu.Lock()
	x.Stats.Paths += len(result)
	x.mu.Unlock()
	x.Engine.AddPaths(len(result))
	return result, nil
}

// protectedCall is the RunFunc root with a panic boundary: a panic on
// the root path (stolen branches have their own boundary in the
// engine) becomes a worker-panic degradation with an empty outcome
// set, never a crash of the batch run.
func (x *Executor) protectedCall(st State, f *microc.FuncDef, args []Value) (outs []evalOut, err error) {
	defer func() {
		if r := recover(); r != nil {
			x.degrade(st, fault.FromPanic("symexec.run", r), f.Pos)
			outs, err = nil, nil
		}
	}()
	return x.callFunction(st, f, args, 0, f.Pos)
}

// clearFrame removes stale cells of f's parameters and locals (objects
// are conflated across invocations; a fresh call must not observe the
// previous invocation's locals).
func (x *Executor) clearFrame(st State, f *microc.FuncDef) {
	drop := func(d *microc.VarDecl) {
		obj := x.VarObj(d)
		for field := range collectFields(x.Prog, d.Type) {
			st.Mem.Delete(obj, field)
		}
		st.Mem.Delete(obj, "")
	}
	for _, p := range f.Params {
		drop(p)
	}
	for _, l := range f.Locals {
		drop(l)
	}
}

// collectFields returns the field names of a struct type (empty for
// scalars).
func collectFields(prog *microc.Program, t microc.Type) map[string]bool {
	out := map[string]bool{}
	if st, ok := t.(microc.StructType); ok {
		if sd, found := prog.Struct(st.Name); found {
			for _, f := range sd.Fields {
				out[f.Name] = true
			}
		}
	}
	return out
}

// callFunction evaluates a call to f with already-evaluated arguments.
func (x *Executor) callFunction(st State, f *microc.FuncDef, args []Value, depth int, pos microc.Pos) ([]evalOut, error) {
	// Check nonnull-annotated parameters (the analysis property).
	for i, p := range f.Params {
		pt, isPtr := p.Type.(microc.PtrType)
		if !isPtr || pt.Qual != microc.QNonNull || i >= len(args) || args[i] == nil {
			continue
		}
		ng := nullFormula(args[i])
		if x.feasible(st, st.PC, ng) {
			x.report(st, NullArg, pos, "possibly-null argument for nonnull parameter %s of %s", p.Name, f.Name)
		}
		// Continue under the assumption the argument was not null.
		st = st.With(solver.NewNot(ng))
	}
	if f.Mix == microc.MixTyped && x.TypedCall != nil {
		outs, err := x.TypedCall(x, st, f, args, pos)
		if err != nil {
			return nil, err
		}
		evs := make([]evalOut, len(outs))
		for i, o := range outs {
			evs[i] = evalOut{st: o.St, v: o.Ret}
		}
		return evs, nil
	}
	if f.IsExtern() {
		return []evalOut{{st: st, v: x.havocValue(f.Ret, f.Name)}}, nil
	}
	if depth > x.MaxDepth {
		x.Engine.Faults().Record(fault.StepBudget)
		st.span.Degrade(fault.StepBudget.String(), "call depth bound at "+f.Name)
		x.report(st, Imprecision, pos, "call depth bound reached at %s", f.Name)
		return []evalOut{{st: st, v: x.havocValue(f.Ret, f.Name)}}, nil
	}
	if x.Summaries != nil {
		if outs, ok := x.trySummary(st, f, args, depth, pos); ok {
			return outs, nil
		}
	}
	x.clearFrame(st, f)
	for i, p := range f.Params {
		if i < len(args) && args[i] != nil {
			st.Mem.Write(x.VarObj(p), "", args[i])
		}
	}
	flows, err := x.execStmt(st, f.Body, depth+1)
	if err != nil {
		return nil, err
	}
	var out []evalOut
	for _, fl := range flows {
		v := fl.ret
		if !fl.returned || v == nil {
			if _, isVoid := f.Ret.(microc.VoidType); isVoid {
				v = VVoid{}
			} else {
				v = x.havocValue(f.Ret, f.Name+"_fallthrough")
			}
		}
		out = append(out, evalOut{st: fl.st, v: v})
	}
	return out, nil
}

// HavocValue builds an arbitrary value of a type (exported for MIXY's
// typed-call results).
func (x *Executor) HavocValue(t microc.Type, hint string) Value {
	return x.havocValue(t, hint)
}

// havocValue builds an arbitrary value of a type (extern calls,
// truncation).
func (x *Executor) havocValue(t microc.Type, hint string) Value {
	switch t := t.(type) {
	case microc.VoidType:
		return VVoid{}
	case microc.IntType:
		return x.FreshInt(hint)
	case microc.PtrType:
		anon := &Object{ID: x.freshID(), Name: hint + ".ext", Type: t.Elem}
		if t.Qual == microc.QNonNull {
			return VObj{Obj: anon}
		}
		return mkITE(x.FreshBool(hint), VObj{Obj: anon}, VNull{})
	case microc.FnPtrType:
		return VUnknown{Why: "extern function pointer " + hint}
	}
	return VUnknown{Why: "extern " + hint}
}

// execStmt executes a statement, forking as needed. Every statement
// is a cooperative interruption point: once a run-stopping fault is
// absorbed, execution unwinds with empty flow sets.
func (x *Executor) execStmt(st State, s microc.Stmt, depth int) ([]flowOutcome, error) {
	if x.interrupted(st, s.StmtPos()) {
		return nil, nil
	}
	switch s := s.(type) {
	case *microc.BlockStmt:
		cur := []flowOutcome{{st: st}}
		for _, inner := range s.Stmts {
			var next []flowOutcome
			for _, fo := range cur {
				if fo.returned {
					next = append(next, fo)
					continue
				}
				outs, err := x.execStmt(fo.st, inner, depth)
				if err != nil {
					return nil, err
				}
				next = append(next, outs...)
			}
			if len(next) > x.MaxPaths {
				x.Engine.Faults().Record(fault.PathBudget)
				st.span.Degrade(fault.PathBudget.String(), "path budget exceeded")
				x.report(st, Imprecision, s.StmtPos(), "path budget exceeded; truncating")
				next = next[:x.MaxPaths]
			}
			cur = next
		}
		return cur, nil

	case *microc.DeclStmt:
		obj := x.VarObj(s.Decl)
		if s.Decl.Init == nil {
			return []flowOutcome{{st: st}}, nil
		}
		outs, err := x.evalExpr(st, s.Decl.Init, depth)
		if err != nil {
			return nil, err
		}
		flows := make([]flowOutcome, len(outs))
		for i, o := range outs {
			o.st.Mem.Write(obj, "", o.v)
			flows[i] = flowOutcome{st: o.st}
		}
		return flows, nil

	case *microc.ExprStmt:
		outs, err := x.evalExpr(st, s.X, depth)
		if err != nil {
			return nil, err
		}
		flows := make([]flowOutcome, len(outs))
		for i, o := range outs {
			flows[i] = flowOutcome{st: o.st}
		}
		return flows, nil

	case *microc.IfStmt:
		conds, err := x.evalCond(st, s.Cond, depth)
		if err != nil {
			return nil, err
		}
		var out []flowOutcome
		for _, c := range conds {
			thenPC := c.st.PC.And(c.f)
			elsePC := c.st.PC.And(solver.NewNot(c.f))
			thenOK := x.feasible(c.st, thenPC)
			elseOK := x.feasible(c.st, elsePC)
			if thenOK && elseOK {
				x.mu.Lock()
				x.Stats.Forks++
				x.mu.Unlock()
				if x.MergeMode != engine.MergeOff {
					// Join-point merging runs both arms on this task and
					// folds them into one continuation; the fork never
					// becomes two scheduler tasks.
					flows, err := x.mergeIf(c.st, s, thenPC, elsePC, depth)
					if err != nil {
						return nil, err
					}
					out = append(out, flows...)
					continue
				}
				if x.parallel() {
					flows, err := x.forkIf(c.st, s, thenPC, elsePC, depth)
					if err != nil {
						return nil, err
					}
					out = append(out, flows...)
					continue
				}
			}
			if thenOK {
				tst := c.st
				if elseOK {
					// Sequential two-sided fork: same span tree shape as
					// forkIf, so traces match across fork strategies.
					c.st.span.Fork(2)
					tst = c.st.Clone()
					tst.span = c.st.span.Child()
				}
				tst.PC = thenPC
				flows, err := x.execStmt(tst, s.Then, depth)
				if err != nil {
					return nil, err
				}
				out = append(out, flows...)
			}
			if elseOK {
				est := c.st
				est.PC = elsePC
				if thenOK {
					est.span = c.st.span.Child()
				}
				if s.Else != nil {
					flows, err := x.execStmt(est, s.Else, depth)
					if err != nil {
						return nil, err
					}
					out = append(out, flows...)
				} else {
					out = append(out, flowOutcome{st: est})
				}
			}
			if thenOK && elseOK {
				c.st.span.Join()
			}
		}
		return out, nil

	case *microc.WhileStmt:
		live := []State{st}
		var out []flowOutcome
		for iter := 0; iter <= x.MaxUnroll && len(live) > 0; iter++ {
			var next []State
			for _, cur := range live {
				conds, err := x.evalCond(cur, s.Cond, depth)
				if err != nil {
					return nil, err
				}
				for _, c := range conds {
					exitPC := c.st.PC.And(solver.NewNot(c.f))
					bodyPC := c.st.PC.And(c.f)
					exitOK := x.feasible(c.st, exitPC)
					bodyOK := iter < x.MaxUnroll && x.feasible(c.st, bodyPC)
					if exitOK {
						est := c.st
						if bodyOK {
							est = c.st.Clone()
						}
						est.PC = exitPC
						out = append(out, flowOutcome{st: est})
					}
					if !bodyOK {
						if iter >= x.MaxUnroll && x.feasible(c.st, bodyPC) {
							x.Engine.Faults().Record(fault.StepBudget)
							c.st.span.Degrade(fault.StepBudget.String(), "loop unrolling bound")
							x.report(c.st, LoopBound, s.StmtPos(), "loop unrolling bound (%d) reached", x.MaxUnroll)
						}
						continue
					}
					bst := c.st
					bst.PC = bodyPC
					flows, err := x.execStmt(bst, s.Body, depth)
					if err != nil {
						return nil, err
					}
					for _, fl := range flows {
						if fl.returned {
							out = append(out, fl)
						} else {
							next = append(next, fl.st)
						}
					}
				}
			}
			live = next
			if x.MergeMode == engine.MergeAggressive && len(live) > 1 {
				// Fold the whole live set carried into the next
				// iteration, so unrolling explores one merged state per
				// iteration instead of a frontier.
				if merged, ok := x.mergeStates(st.span, s.StmtPos().String(), st.PC, live, 0); ok {
					live = []State{merged}
				}
			}
			if len(out)+len(live) > x.MaxPaths {
				x.Engine.Faults().Record(fault.PathBudget)
				st.span.Degrade(fault.PathBudget.String(), "path budget exceeded in loop")
				x.report(st, Imprecision, s.StmtPos(), "path budget exceeded in loop; truncating")
				live = nil
			}
		}
		return out, nil

	case *microc.ReturnStmt:
		if s.X == nil {
			return []flowOutcome{{st: st, returned: true, ret: VVoid{}}}, nil
		}
		outs, err := x.evalExpr(st, s.X, depth)
		if err != nil {
			return nil, err
		}
		flows := make([]flowOutcome, len(outs))
		for i, o := range outs {
			flows[i] = flowOutcome{st: o.st, returned: true, ret: o.v}
		}
		return flows, nil
	}
	return nil, fmt.Errorf("symexec: unknown statement %T", s)
}

// forkIf runs the two feasible sides of a conditional as parallel
// engine tasks. Each branch gets a disjoint memory (the then side a
// clone, the else side the original) and its own report sink; the join
// splices then-reports before else-reports into the parent sink and
// appends then-flows before else-flows, reproducing the sequential
// depth-first order exactly. If the engine's path or depth budget is
// exhausted the fork degrades gracefully: the path continues into the
// then side only, with an Imprecision report — the same truncation
// contract as MaxPaths.
func (x *Executor) forkIf(st State, s *microc.IfStmt, thenPC, elsePC *solver.PC, depth int) ([]flowOutcome, error) {
	if err := x.Engine.Charge(st.forkDepth); err != nil {
		switch {
		case errors.Is(err, engine.ErrBudget):
			x.Engine.Faults().RecordErr(err)
			st.span.Degrade(fault.ClassOf(err).String(), "fork truncated to then-branch")
			x.report(st, Imprecision, s.StmtPos(), "engine path budget exhausted; truncating")
			tst := st
			tst.PC = thenPC
			return x.execStmt(tst, s.Then, depth)
		case fault.Degradable(err):
			// Deadline, cancellation, or injected abort: stop the run,
			// keeping every completed path.
			x.degrade(st, err, s.StmtPos())
			return nil, nil
		default:
			return nil, err
		}
	}
	parent := st.rs
	st.span.Fork(2)
	tst := st.Clone()
	tst.PC = thenPC
	tst.rs = &reportSink{}
	tst.forkDepth++
	tst.span = st.span.Child()
	est := st
	est.PC = elsePC
	est.rs = &reportSink{}
	est.forkDepth++
	est.span = st.span.Child()
	thenFlows, elseFlows, err := engine.Fork2(x.Engine,
		func() ([]flowOutcome, error) { return x.execStmt(tst, s.Then, depth) },
		func() ([]flowOutcome, error) {
			if s.Else != nil {
				return x.execStmt(est, s.Else, depth)
			}
			return []flowOutcome{{st: est}}, nil
		})
	if err != nil {
		if !fault.Degradable(err) {
			return nil, err
		}
		// A recovered branch panic (or other classified fault) loses
		// that branch's flows; the sibling's survive, with the hole
		// marked by the degradation report.
		x.degrade(st, err, s.StmtPos())
	}
	// Ordered join: then-reports then else-reports into the parent
	// sink; surviving flows hand their reports back to the parent.
	if parent != nil {
		parent.reports = append(parent.reports, tst.rs.reports...)
		parent.reports = append(parent.reports, est.rs.reports...)
	} else {
		x.flushSink(tst.rs)
		x.flushSink(est.rs)
	}
	st.span.Join()
	out := append(thenFlows, elseFlows...)
	for i := range out {
		out[i].st.rs = parent
	}
	return out, nil
}
