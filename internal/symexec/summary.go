package symexec

import (
	"fmt"

	"mix/internal/engine"
	"mix/internal/microc"
	"mix/internal/obs"
	"mix/internal/solver"
)

// SummaryParam is the canonical placeholder variable standing for the
// i-th parameter of fn inside its summary. Summaries are computed once
// over these placeholders; instantiation substitutes the call site's
// actual argument terms for them. The "$" keeps the namespace disjoint
// from every executor-generated variable ("cx%d_", "cb%d_").
func SummaryParam(fn string, i int) string {
	return fmt.Sprintf("sum$%s$p%d", fn, i)
}

// SummaryArm is one guarded arm of a function summary: when Guard
// holds over the parameter placeholders, the call returns Ret. Arms
// come from one complete path exploration of the function body, so
// across a summary they are mutually exclusive and their disjunction
// is valid — the admissibility fact instantiation relies on.
type SummaryArm struct {
	Guard solver.Formula
	Ret   solver.Term // nil for void returns
}

// FuncSummary is the compositional summary of one function: its arms
// plus the static height of its inline call chain (a leaf is 1), which
// instantiation checks against MaxDepth so a summarized call degrades
// at exactly the sites the inline executor would.
type FuncSummary struct {
	Fn     string
	Height int
	Arms   []SummaryArm
}

// Summarizer provides function summaries to the executor. Installed
// via Executor.Summaries (internal/summary implements it); nil keeps
// the classic inline-every-call discipline.
type Summarizer interface {
	// Summary returns f's summary, or nil and a human-readable reason
	// when calls to f must fall back to inlining (not summarizable,
	// recursive, arm cap exceeded, reports during summarization, ...).
	Summary(f *microc.FuncDef) (sum *FuncSummary, fallbackReason string)
	// NoteInstantiated records one call-site instantiation of f.
	NoteInstantiated(f *microc.FuncDef, arms int)
	// NoteFallback records one call site falling back to inlining.
	NoteFallback(f *microc.FuncDef, reason string)
}

// noteFallback makes a fallback observable: counter plus trace event.
func (x *Executor) noteFallback(st State, f *microc.FuncDef, reason string) {
	x.Summaries.NoteFallback(f, reason)
	st.span.Emit(obs.Event{Kind: obs.KindSummary, Detail: "fallback " + f.Name + ": " + reason})
}

// trySummary answers a call to f from its summary. It returns
// (nil, false) when the call must inline instead — no summary, the
// depth budget would have fired inside the inline expansion, or an
// argument is not an integer term — with the fallback recorded.
//
// Instantiation renames every summary variable: parameter placeholders
// become the actual argument terms, and all remaining variables (the
// summary world's fresh integers and boolean choices) map to fresh
// caller variables, memoized per call site so one summary variable is
// one caller variable across all arms. With merging enabled the arms
// collapse into a single ite-chained return value on an unchanged path
// condition (sound because the arms partition the input space); with
// merging off each feasible arm continues as its own path with the
// instantiated guard conjoined, matching the inline fork discipline.
func (x *Executor) trySummary(st State, f *microc.FuncDef, args []Value, depth int, pos microc.Pos) ([]evalOut, bool) {
	sum, reason := x.Summaries.Summary(f)
	if sum == nil {
		x.noteFallback(st, f, reason)
		return nil, false
	}
	if depth+sum.Height-1 > x.MaxDepth {
		// Inlining f here would hit the call-depth bound somewhere in
		// its expansion; inline so the bound fires at the same site
		// with the same Imprecision report as a summary-off run.
		x.noteFallback(st, f, "depth bound")
		return nil, false
	}
	sub := &solver.Subst{Ints: map[string]solver.Term{}}
	for i := range f.Params {
		var t solver.Term
		if i < len(args) && args[i] != nil {
			var ok bool
			if t, ok = intOf(args[i]); !ok {
				// A non-integer value flowing into an int parameter;
				// inline so the executor's own coercion (and reporting)
				// applies unchanged.
				x.noteFallback(st, f, "argument not an integer term")
				return nil, false
			}
		}
		if t == nil {
			// Missing argument: lazy initialization semantics — a fresh
			// unconstrained caller integer, as defaultInit would build.
			t = x.FreshInt(f.Name + "_p").T
		}
		sub.Ints[SummaryParam(f.Name, i)] = t
	}
	renamedInts := map[string]solver.Term{}
	renamedBools := map[string]solver.Formula{}
	sub.RenameInt = func(name string) solver.Term {
		if t, ok := renamedInts[name]; ok {
			return t
		}
		t := solver.Term(x.FreshInt("sum_" + f.Name).T)
		renamedInts[name] = t
		return t
	}
	sub.RenameBool = func(name string) solver.Formula {
		if g, ok := renamedBools[name]; ok {
			return g
		}
		g := x.FreshBool("sum_" + f.Name)
		renamedBools[name] = g
		return g
	}

	_, isVoid := f.Ret.(microc.VoidType)
	guards := make([]solver.Formula, len(sum.Arms))
	rets := make([]solver.Term, len(sum.Arms))
	for i, arm := range sum.Arms {
		guards[i] = sub.ApplyFormula(arm.Guard)
		if arm.Ret != nil {
			rets[i] = sub.ApplyTerm(arm.Ret)
		} else if !isVoid {
			x.noteFallback(st, f, "arm without a return term")
			return nil, false
		}
	}
	x.Summaries.NoteInstantiated(f, len(sum.Arms))
	st.span.Emit(obs.Event{Kind: obs.KindSummary, Detail: "instantiate " + f.Name, N: int64(len(sum.Arms))})

	if x.MergeMode != engine.MergeOff || len(sum.Arms) == 1 {
		// One merged continuation: the arms are exhaustive and mutually
		// exclusive, so the last arm serves as the ite default and the
		// caller's PC needs no new conjunct. (A single-arm summary has a
		// valid guard, so dropping it is equally sound with merging off.)
		var v Value = VVoid{}
		if !isVoid {
			t := rets[len(rets)-1]
			for i := len(rets) - 2; i >= 0; i-- {
				t = solver.NewIte(guards[i], rets[i], t)
			}
			v = VInt{T: t}
		}
		return []evalOut{{st: st, v: v}}, true
	}

	// Merging off: one path per feasible arm, in summary (depth-first)
	// arm order — the order inline forking would produce.
	var outs []evalOut
	for i := range sum.Arms {
		if !x.feasible(st, st.PC, guards[i]) {
			continue
		}
		ast := st
		if len(outs) > 0 {
			ast = st.Clone()
		}
		ast.PC = st.PC.And(guards[i])
		var v Value = VVoid{}
		if !isVoid {
			v = VInt{T: rets[i]}
		}
		outs = append(outs, evalOut{st: ast, v: v})
	}
	return outs, true
}
