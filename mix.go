// Package mix is a from-scratch reproduction of "Mixing Type Checking
// and Symbolic Execution" (Khoo, Chang, Foster — PLDI 2010).
//
// It provides two entry points, mirroring the paper's two systems:
//
//   - The MIX core system (Section 3): a small ML-like language with
//     typed blocks {t e t} and symbolic blocks {s e s}, checked by an
//     off-the-shelf type checker and an off-the-shelf symbolic
//     executor connected only by the two mix rules. Use Parse and
//     Check.
//
//   - The MIXY prototype (Section 4): null/nonnull type qualifier
//     inference mixed with a symbolic executor over MicroC (a C
//     subset), switching at functions annotated MIX(typed) or
//     MIX(symbolic). Use ParseC and AnalyzeC.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package mix

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mix/internal/core"
	"mix/internal/engine"
	"mix/internal/fault"
	"mix/internal/lang"
	"mix/internal/microc"
	"mix/internal/mixy"
	"mix/internal/obs"
	"mix/internal/solver"
	"mix/internal/summary"
	"mix/internal/sym"
	"mix/internal/symexec"
	"mix/internal/types"
)

// Mode selects the analysis of the outermost program scope ("we leave
// unspecified whether the outermost scope is a typed or a symbolic
// block; MIX can handle either case").
type Mode int

const (
	// StartTyped treats the program as wrapped in a typed block.
	StartTyped Mode = iota
	// StartSymbolic treats the program as wrapped in a symbolic block.
	StartSymbolic
)

// Config configures a core-language mixed check.
type Config struct {
	// Mode selects the outermost analysis.
	Mode Mode
	// Unsound skips the exhaustive() tautology check, modeling
	// bug-finding-style symbolic execution.
	Unsound bool
	// DeferConditionals uses the SEIF-DEFER rule instead of forking.
	DeferConditionals bool
	// SolverAddrEq decides OVERWRITE-OK address equality with the
	// solver under the path condition instead of syntactically.
	SolverAddrEq bool
	// EffectAware skips the SETYPBLOCK memory havoc for typed blocks a
	// syntactic effect analysis proves write-free (the paper's
	// Section 3.2 type-and-effect refinement).
	EffectAware bool
	// Merge selects the veritesting-style state-merging mode for
	// forked conditionals: "off", "joins", or "aggressive" (DESIGN.md
	// section 12). The empty string keeps merging off — the library
	// default; the CLIs default to "joins".
	Merge string
	// Env declares free variables of the program as name -> type
	// syntax, e.g. "int", "bool", "int ref", "int -> int".
	Env map[string]string
	// Workers > 0 enables the parallel path-exploration engine with
	// that many workers (1 = sequential exploration with the memoizing
	// solver pool). 0 keeps the engine off entirely.
	Workers int
	// MaxPaths bounds the engine's total path budget (0 = unlimited);
	// exceeding it degrades the check to an uncertified (Degraded)
	// result.
	MaxPaths int
	// NoMemo disables the engine's solver memo table.
	NoMemo bool
	// Cache, when non-nil, is a shared cross-run solver cache
	// (engine.NewCache): this check reads and extends it instead of
	// building private caches, so back-to-back checks skip re-proving
	// formulas an earlier run already decided. Verdicts are
	// byte-identical to cold runs — a hit only skips work — and hit
	// counters are visible on Result and engine.Cache.Stats. The
	// serving daemon (cmd/mixd) shares one Cache across all requests.
	Cache *engine.Cache
	// CacheDir, when non-empty (and Cache is nil), backs this check's
	// solver cache with a persistent on-disk tier: definite verdicts
	// and counterexample models load from the directory before the run
	// and are written back after it, so a cold process re-uses what an
	// earlier process proved. Ignored when Cache is provided — a shared
	// cache carries its own Dir (engine.CacheOptions.Dir).
	CacheDir string
	// Solver selects the search core for every solver in the run:
	// "cdcl" (the default — conflict-driven clause learning with
	// incremental assumption stacks), "dpll" (the legacy chronological
	// core, kept as a differential oracle), or "portfolio" (racing both
	// per query, first definite answer wins). Empty means cdcl.
	Solver string
	// MaxAtoms, MaxDecisions, and MaxLearned override the per-query
	// solver resource bounds: decision atoms per query, branch
	// decisions per query, and learned clauses retained by the CDCL
	// core. 0 keeps each solver default (256, 2^20, 10000).
	MaxAtoms     int
	MaxDecisions int
	MaxLearned   int
	// Deadline bounds the whole check's wall-clock time (0 = none).
	// An expired deadline degrades the result instead of hanging or
	// failing: exploration stops cooperatively and the check reports
	// Degraded with the fault class.
	Deadline time.Duration
	// SolverTimeout bounds each individual solver query (0 = none).
	SolverTimeout time.Duration
	// Context, when non-nil, is the parent context for the run;
	// cancellation degrades the check the same way a deadline does.
	Context context.Context
	// FaultInjector arms deterministic fault injection at the engine's
	// fixed injection points (chaos tests only; nil in production).
	FaultInjector *fault.Injector
	// Tracer, when non-nil, records structured path-exploration events
	// (fork/join/solve/degrade) for the run; flush it with WriteJSONL
	// or WriteChromeTrace after the check returns.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the run's metrics under their
	// canonical dotted names once the check completes (plus live solver
	// pipeline histograms during it).
	Metrics *obs.Registry
	// ShardPrefix, when non-empty, restricts every top-level symbolic
	// block to the subtree reached by forcing its first
	// len(ShardPrefix) fork decisions (false = then, true = else);
	// pruned sibling guards keep the exhaustiveness check sound per
	// shard, and Result.BlockTypes carries the per-block type
	// fingerprints the shard coordinator compares across work items
	// (DESIGN.md section 15). This is the shard-worker hook — use
	// shard.ExploreCore (the -shards flag) rather than setting it
	// directly. Incompatible with DeferConditionals, whose merged
	// conditionals consume no fork decisions.
	ShardPrefix []bool
}

// Result is the outcome of a mixed check.
type Result struct {
	// Type is the derived type (as a string), when the check passed.
	Type string
	// Err is the first error, when the check failed.
	Err error
	// Reports lists every symbolic-execution finding, including
	// discarded infeasible ones (how MIX removes false positives).
	Reports []string
	// Paths is the number of symbolic paths explored.
	Paths int
	// Merges is the number of join-point state merges performed (only
	// nonzero with Config.Merge enabled or DeferConditionals).
	Merges int
	// SolverQueries counts SMT queries issued.
	SolverQueries int
	// Engine statistics (zero without Workers): conditional forks,
	// forks whose branch ran on another worker, solver memo hits and
	// misses, and time spent inside the solver.
	Forks      int
	Steals     int
	MemoHits   int
	MemoMisses int
	SolverTime time.Duration
	// Solver-pipeline statistics (zero without Workers): queries decided
	// by the constant-time interval fast path, independence components
	// that reached the memo/DPLL stage, the largest such component (in
	// conjuncts), and components satisfied by a cached counterexample.
	QuickDecided int
	Slices       int
	MaxSlice     int
	CexHits      int
	// Degraded reports that exploration was truncated by a classified
	// fault (deadline, cancellation, budget, solver limit, recovered
	// panic). A degraded check certifies nothing — Type is empty — but
	// it is not a rejection either: Err is nil, and Fault/FaultDetail
	// name the class and the budget that tripped.
	Degraded    bool
	Fault       string
	FaultDetail string
	// Classified-fault counters for the run (zero without an engine):
	// expired deadlines/cancellations, worker panics recovered, and
	// paths truncated by path/step budgets.
	Timeouts        int64
	PanicsRecovered int64
	PathsTruncated  int64
	// BlockTypes, under Config.ShardPrefix, fingerprints each top-level
	// symbolic block's agreed type ("pos type", program order); the
	// shard coordinator compares the lists across work items to catch
	// type disagreements split across shards.
	BlockTypes []string
}

// Parse parses a core-language program.
//
//	expr ::= let x = e in e | if e then e else e | e := e | e && e
//	       | e = e | e + e | not e | !e | ref e | n | true | false | x
//	       | (e) | {t e t} | {s e s}
func Parse(src string) (lang.Expr, error) { return lang.Parse(src) }

// Check runs the mixed analysis on a core-language program.
func Check(src string, cfg Config) Result {
	e, err := lang.Parse(src)
	if err != nil {
		return Result{Err: err}
	}
	return CheckExpr(e, cfg)
}

// Validate reports the first inconsistent option as a descriptive
// error, or nil. The CLIs call it before running (exit 2) and the
// serving daemon turns the error into a 400 response; Check/CheckExpr
// also call it, so library misuse surfaces as a descriptive Result.Err
// instead of a silent clamp.
func (cfg Config) Validate() error {
	switch {
	case cfg.Mode != StartTyped && cfg.Mode != StartSymbolic:
		return fmt.Errorf("mix: unknown Mode %d (want StartTyped or StartSymbolic)", cfg.Mode)
	case cfg.Workers < 0:
		return fmt.Errorf("mix: negative Workers %d (0 disables the engine)", cfg.Workers)
	case cfg.MaxPaths < 0:
		return fmt.Errorf("mix: negative MaxPaths budget %d (0 means unlimited)", cfg.MaxPaths)
	case cfg.Deadline < 0:
		return fmt.Errorf("mix: negative Deadline %v (0 means none)", cfg.Deadline)
	case cfg.SolverTimeout < 0:
		return fmt.Errorf("mix: negative SolverTimeout %v (0 means none)", cfg.SolverTimeout)
	case cfg.MaxAtoms < 0:
		return fmt.Errorf("mix: negative MaxAtoms %d (0 means the solver default)", cfg.MaxAtoms)
	case cfg.MaxDecisions < 0:
		return fmt.Errorf("mix: negative MaxDecisions %d (0 means the solver default)", cfg.MaxDecisions)
	case cfg.MaxLearned < 0:
		return fmt.Errorf("mix: negative MaxLearned %d (0 means the solver default)", cfg.MaxLearned)
	}
	if _, err := solver.ParseAlgo(cfg.Solver); err != nil {
		return fmt.Errorf("mix: %w", err)
	}
	if cfg.Merge != "" {
		if _, err := engine.ParseMergeMode(cfg.Merge); err != nil {
			return fmt.Errorf("mix: bad Merge mode %q: %w", cfg.Merge, err)
		}
	}
	if cfg.NoMemo && !cfg.wantsEngine() {
		return fmt.Errorf("mix: NoMemo set with zero Workers and no other engine option — the memo only exists inside the engine (set Workers >= 1)")
	}
	if len(cfg.ShardPrefix) > 0 && cfg.DeferConditionals {
		return fmt.Errorf("mix: ShardPrefix set with DeferConditionals — deferred conditionals merge instead of forking, so there are no fork decisions to shard on")
	}
	return nil
}

// solverConfig bundles the solver knobs shared by Config and CConfig.
// Validate has already vetted the algorithm name, so parse errors here
// fall back to the default core rather than panicking.
func solverConfig(algo string, maxAtoms, maxDecisions, maxLearned int) solver.Config {
	a, _ := solver.ParseAlgo(algo)
	return solver.Config{
		Algo:         a,
		MaxAtoms:     maxAtoms,
		MaxDecisions: maxDecisions,
		MaxLearned:   maxLearned,
	}
}

// wantsEngine mirrors CheckExpr's engine-construction condition.
func (cfg Config) wantsEngine() bool {
	return cfg.Workers > 0 || cfg.MaxPaths > 0 || cfg.Deadline > 0 ||
		cfg.SolverTimeout > 0 || cfg.Cache != nil || cfg.CacheDir != "" ||
		cfg.Context != nil || cfg.FaultInjector != nil || cfg.Tracer != nil ||
		cfg.Metrics != nil
}

// CheckExpr runs the mixed analysis on a parsed program.
func CheckExpr(e lang.Expr, cfg Config) Result {
	if err := cfg.Validate(); err != nil {
		return Result{Err: err}
	}
	scfg := solverConfig(cfg.Solver, cfg.MaxAtoms, cfg.MaxDecisions, cfg.MaxLearned)
	opts := core.Options{
		Unsound:      cfg.Unsound,
		SolverAddrEq: cfg.SolverAddrEq,
		EffectAware:  cfg.EffectAware,
		ShardPrefix:  cfg.ShardPrefix,
		Solver:       scfg,
	}
	if cfg.DeferConditionals {
		opts.IfMode = sym.DeferIf
	}
	if cfg.Merge != "" {
		mm, err := engine.ParseMergeMode(cfg.Merge)
		if err != nil {
			return Result{Err: err}
		}
		opts.Merge = mm
	}
	var eng *engine.Engine
	if cfg.wantsEngine() {
		cache := cfg.Cache
		if cache == nil && cfg.CacheDir != "" {
			// Private per-run cache over a persistent directory: load
			// before, write back after.
			cache = engine.NewCache(engine.CacheOptions{Dir: cfg.CacheDir})
			defer cache.Persist()
		}
		eopts := engine.Options{
			Workers:       cfg.Workers,
			MaxPaths:      int64(cfg.MaxPaths),
			NoMemo:        cfg.NoMemo,
			Cache:         cache,
			Context:       cfg.Context,
			Deadline:      cfg.Deadline,
			SolverTimeout: cfg.SolverTimeout,
			FaultInjector: cfg.FaultInjector,
			Tracer:        cfg.Tracer,
			Metrics:       cfg.Metrics,
			SolverAlgo:    scfg.Algo,
		}
		if scfg.CustomBounds() {
			// Non-default bounds need private pooled instances; a shared
			// cache's warm solvers carry the default bounds.
			eopts.NewSolver = scfg.NewSolver
		}
		eng = engine.New(eopts)
		defer eng.Close()
		opts.Engine = eng
	}
	checker := core.New(opts)
	env := types.EmptyEnv()
	// Bind in sorted order: fresh symbolic variable IDs are assigned in
	// binding order, and they appear in reports, so map iteration order
	// must not leak into the output.
	names := make([]string, 0, len(cfg.Env))
	for name := range cfg.Env {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ty := cfg.Env[name]
		te, err := lang.ParseType(ty)
		if err != nil {
			return Result{Err: fmt.Errorf("mix: bad env type %q for %s: %w", ty, name, err)}
		}
		t, err := types.FromExpr(te)
		if err != nil {
			return Result{Err: fmt.Errorf("mix: bad env type %q for %s: %w", ty, name, err)}
		}
		env = env.Extend(name, t)
	}
	var ty types.Type
	var err error
	if cfg.Mode == StartSymbolic {
		ty, err = checker.CheckSymbolic(env, e)
	} else {
		ty, err = checker.Check(env, e)
	}
	res := Result{
		Err:           err,
		Paths:         checker.Executor().Stats.Paths,
		Merges:        checker.Executor().Stats.Merges,
		SolverQueries: checker.Solver().Stats.SatQueries,
	}
	// The single degradation rule: a classified fault (deadline, budget,
	// solver limit, recovered panic) is an explicit "cannot certify",
	// not a rejection — the typed side's top. Genuine type errors and
	// feasible-path findings keep their error.
	if fault.Degradable(err) {
		res.Degraded = true
		res.Fault = fault.ClassOf(err).String()
		res.FaultDetail = err.Error()
		res.Err = nil
		// Faults absorbed after exploration (a solver limit during the
		// feasibility or exhaustiveness checks of TSYMBLOCK) never pass
		// through an executor span, so the trace would otherwise show a
		// degraded verdict with no provenance; a check-level degrade
		// event closes that gap. Emitted only on degraded runs, so
		// fault-free traces stay byte-comparable.
		cfg.Tracer.Root("mix.check").Degrade(res.Fault, "verdict degraded to unknown")
	}
	if eng != nil {
		es := eng.Snapshot()
		res.SolverQueries += int(es.SolverQueries)
		res.Forks = int(es.Forks)
		res.Steals = int(es.Steals)
		res.MemoHits = int(es.MemoHits)
		res.MemoMisses = int(es.MemoMisses)
		res.SolverTime = es.SolverTime
		res.QuickDecided = int(es.QuickDecided)
		res.Slices = int(es.Slices)
		res.MaxSlice = int(es.MaxSlice)
		res.CexHits = int(es.CexHits)
		res.Timeouts = es.Faults.Of(fault.Timeout) + es.Faults.Of(fault.Canceled)
		res.PanicsRecovered = es.Faults.Of(fault.WorkerPanic)
		res.PathsTruncated = es.Faults.Truncations()
	}
	if ty != nil {
		res.Type = ty.String()
	}
	for _, r := range checker.Reports {
		res.Reports = append(res.Reports, r.String())
	}
	res.BlockTypes = checker.BlockTypes
	if m := cfg.Metrics; m != nil {
		eng.PublishMetrics()
		m.Gauge("mix.paths").Set(int64(res.Paths))
		m.Gauge("mix.reports").Set(int64(len(res.Reports)))
		var deg int64
		if res.Degraded {
			deg = 1
		}
		m.Gauge("mix.degraded").Set(deg)
	}
	return res
}

// CConfig configures a MIXY analysis of a MicroC program.
type CConfig struct {
	// Entry is the entry function (default "main").
	Entry string
	// PureTypes ignores MIX annotations, giving the paper's baseline:
	// pure type qualifier inference.
	PureTypes bool
	// NoCache disables block caching (Section 4.3).
	NoCache bool
	// StrictInit treats uninitialized pointer globals as null (C zero
	// initialization); the paper's MIXY tracks only explicit NULL
	// uses.
	StrictInit bool
	// Merge selects the state-merging mode ("off", "joins",
	// "aggressive"; empty = off) for the per-block symbolic executor,
	// and MergeCap the joins-mode divergence cap (0 = default, 8). See
	// DESIGN.md section 12.
	Merge    string
	MergeCap int
	// Summaries answers eligible calls in the per-block executor from
	// compositional function summaries (internal/summary): each
	// non-MIX-annotated int-fragment function is analyzed once into
	// guarded arms, and call sites instantiate the arms by substitution
	// instead of re-inlining the body. Verdicts are identical to
	// inlining; ineligible calls fall back observably. SummaryCap
	// bounds the arms per summary (0 = default, 16).
	Summaries  bool
	SummaryCap int
	// SummaryStore, when non-nil (and Summaries is set), is a shared
	// cross-run summary cache (summary.NewStore); the daemon shares one
	// across requests. Nil with Summaries set builds a store from
	// CacheDir (or memory-only when that too is empty).
	SummaryStore *summary.Store
	// Workers > 0 enables the engine: solver queries go through a
	// memoizing pool and the symbolic-to-typed translation queries of
	// each block evaluate in parallel across that many workers.
	Workers int
	// NoMemo disables the engine's solver memo table.
	NoMemo bool
	// Cache, when non-nil, is a shared cross-run solver cache; see
	// Config.Cache.
	Cache *engine.Cache
	// CacheDir, when non-empty, persists the caches across processes:
	// the function-summary store (with Summaries) and, when Cache is
	// nil, this run's solver memo and counterexample models; see
	// Config.CacheDir.
	CacheDir string
	// Solver selects the search core ("cdcl", "dpll", "portfolio";
	// empty = cdcl) and MaxAtoms / MaxDecisions / MaxLearned override
	// the per-query solver bounds; see Config.Solver.
	Solver       string
	MaxAtoms     int
	MaxDecisions int
	MaxLearned   int
	// Deadline bounds the analysis' wall-clock time (0 = none). An
	// expired deadline stops the fixed point and pessimizes the
	// frontier (sound over-approximation) instead of hanging.
	Deadline time.Duration
	// SolverTimeout bounds each individual solver query (0 = none).
	SolverTimeout time.Duration
	// Context, when non-nil, is the parent context for the run.
	Context context.Context
	// FaultInjector arms deterministic fault injection (chaos tests
	// only; nil in production).
	FaultInjector *fault.Injector
	// Tracer, when non-nil, records structured events for the run:
	// per-block path trees plus the MIXY fixpoint timeline.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the run's metrics once the
	// analysis completes.
	Metrics *obs.Registry
}

// CResult is the outcome of a MIXY analysis.
type CResult struct {
	// Warnings are the analysis findings ("null value may reach
	// nonnull position ...", null dereferences, unsupported function
	// pointers).
	Warnings []string
	// Merges is the number of join-point state merges performed by the
	// per-block executor (nonzero only with CConfig.Merge enabled).
	Merges int
	// BlocksAnalyzed, CacheHits, FixpointIters and SolverQueries
	// describe the work done.
	BlocksAnalyzed int
	CacheHits      int
	FixpointIters  int
	SolverQueries  int
	// MemoHits/MemoMisses count engine solver-memo traffic (zero
	// without Workers); SolverTime is time spent inside the solver.
	MemoHits   int
	MemoMisses int
	SolverTime time.Duration
	// Summary statistics (zero without CConfig.Summaries): summaries
	// computed fresh this run vs answered from the store's memory/disk
	// tiers, corrupt disk entries degraded to recompute, call sites
	// answered by instantiating a summary, and call sites that fell
	// back to inlining.
	SummaryComputed     int
	SummaryMemHits      int
	SummaryDiskHits     int
	SummaryCorrupt      int
	SummaryInstantiated int64
	SummaryFallbacks    int64
	// Solver-pipeline statistics (zero without Workers): see
	// Result.QuickDecided and friends.
	QuickDecided int
	Slices       int
	MaxSlice     int
	CexHits      int
	// Persistent-memory statistics: state forks (O(1) clones), cells
	// those forks shared structurally instead of copying, and cell
	// writes.
	MemClones   int64
	SharedCells int64
	MemWrites   int64
	// Degraded reports that the fixed point was truncated by a
	// classified fault and the frontier's qualifiers were pessimized
	// to null (a sound over-approximation); Fault names the class and
	// FaultDetail the diagnostic.
	Degraded    bool
	Fault       string
	FaultDetail string
	// Classified-fault counters for the run: expired deadlines and
	// cancellations, worker panics recovered, and paths truncated by
	// path/step budgets.
	Timeouts        int64
	PanicsRecovered int64
	PathsTruncated  int64
}

// Validate reports the first inconsistent option as a descriptive
// error, or nil; see Config.Validate.
func (cfg CConfig) Validate() error {
	switch {
	case cfg.Workers < 0:
		return fmt.Errorf("mix: negative Workers %d (0 disables the engine)", cfg.Workers)
	case cfg.Deadline < 0:
		return fmt.Errorf("mix: negative Deadline %v (0 means none)", cfg.Deadline)
	case cfg.SolverTimeout < 0:
		return fmt.Errorf("mix: negative SolverTimeout %v (0 means none)", cfg.SolverTimeout)
	case cfg.MergeCap < 0:
		return fmt.Errorf("mix: negative MergeCap %d (0 means the joins-mode default)", cfg.MergeCap)
	case cfg.MergeCap > 0 && cfg.Merge == "":
		return fmt.Errorf("mix: MergeCap %d set without a Merge mode — the cap only applies to the merging executor (set Merge to \"joins\" or \"aggressive\")", cfg.MergeCap)
	case cfg.SummaryCap < 0:
		return fmt.Errorf("mix: negative SummaryCap %d (0 means the default, %d)", cfg.SummaryCap, summary.DefaultCap)
	case cfg.SummaryCap > 0 && !cfg.Summaries:
		return fmt.Errorf("mix: SummaryCap %d set without Summaries — the cap only applies to summary construction (set Summaries)", cfg.SummaryCap)
	case cfg.SummaryStore != nil && !cfg.Summaries:
		return fmt.Errorf("mix: SummaryStore set without Summaries — the store is only consulted when summaries are enabled")
	case cfg.MaxAtoms < 0:
		return fmt.Errorf("mix: negative MaxAtoms %d (0 means the solver default)", cfg.MaxAtoms)
	case cfg.MaxDecisions < 0:
		return fmt.Errorf("mix: negative MaxDecisions %d (0 means the solver default)", cfg.MaxDecisions)
	case cfg.MaxLearned < 0:
		return fmt.Errorf("mix: negative MaxLearned %d (0 means the solver default)", cfg.MaxLearned)
	}
	if _, err := solver.ParseAlgo(cfg.Solver); err != nil {
		return fmt.Errorf("mix: %w", err)
	}
	if cfg.Merge != "" {
		if _, err := engine.ParseMergeMode(cfg.Merge); err != nil {
			return fmt.Errorf("mix: bad Merge mode %q: %w", cfg.Merge, err)
		}
	}
	if cfg.NoMemo && !cfg.wantsEngine() {
		return fmt.Errorf("mix: NoMemo set with zero Workers and no other engine option — the memo only exists inside the engine (set Workers >= 1)")
	}
	return nil
}

// wantsEngine mirrors AnalyzeC's engine-construction condition.
func (cfg CConfig) wantsEngine() bool {
	return cfg.Workers > 0 || cfg.Deadline > 0 || cfg.SolverTimeout > 0 ||
		cfg.Cache != nil || cfg.CacheDir != "" || cfg.Context != nil ||
		cfg.FaultInjector != nil || cfg.Tracer != nil || cfg.Metrics != nil
}

// ParseC parses a MicroC translation unit.
func ParseC(src string) (*microc.Program, error) { return microc.Parse(src) }

// AnalyzeC runs MIXY (or, with PureTypes, plain qualifier inference)
// on a MicroC program.
func AnalyzeC(src string, cfg CConfig) (CResult, error) {
	if err := cfg.Validate(); err != nil {
		return CResult{}, err
	}
	prog, err := microc.Parse(src)
	if err != nil {
		return CResult{}, err
	}
	scfg := solverConfig(cfg.Solver, cfg.MaxAtoms, cfg.MaxDecisions, cfg.MaxLearned)
	var eng *engine.Engine
	if cfg.wantsEngine() {
		cache := cfg.Cache
		if cache == nil && cfg.CacheDir != "" {
			cache = engine.NewCache(engine.CacheOptions{Dir: cfg.CacheDir})
			defer cache.Persist()
		}
		eopts := engine.Options{
			Workers:       cfg.Workers,
			NoMemo:        cfg.NoMemo,
			Cache:         cache,
			Context:       cfg.Context,
			Deadline:      cfg.Deadline,
			SolverTimeout: cfg.SolverTimeout,
			FaultInjector: cfg.FaultInjector,
			Tracer:        cfg.Tracer,
			Metrics:       cfg.Metrics,
			SolverAlgo:    scfg.Algo,
		}
		if scfg.CustomBounds() {
			eopts.NewSolver = scfg.NewSolver
		}
		eng = engine.New(eopts)
		defer eng.Close()
	}
	var mergeMode engine.MergeMode
	if cfg.Merge != "" {
		mergeMode, err = engine.ParseMergeMode(cfg.Merge)
		if err != nil {
			return CResult{}, err
		}
	}
	// Summaries are precomputed before the fixpoint, bottom-up over the
	// call graph, consulting the cross-run store (memory, then disk)
	// before running any scratch symbolic execution.
	var sums *summary.ProgramSummaries
	if cfg.Summaries {
		store := cfg.SummaryStore
		if store == nil {
			store = summary.NewStore(cfg.CacheDir)
		}
		sums = store.Precompute(prog, cfg.SummaryCap)
	}
	// The memory counters are process-wide and monotone; this run's
	// contribution is the before/after delta.
	clones0, shared0, writes0 := symexec.MemoryStats()
	mopts := mixy.Options{
		Entry:             cfg.Entry,
		IgnoreAnnotations: cfg.PureTypes,
		NoCache:           cfg.NoCache,
		StrictInit:        cfg.StrictInit,
		Merge:             mergeMode,
		MergeCap:          cfg.MergeCap,
		Engine:            eng,
		Tracer:            cfg.Tracer,
		Solver:            scfg,
	}
	if sums != nil {
		mopts.Summaries = sums
	}
	a, err := mixy.Run(prog, mopts)
	if err != nil {
		return CResult{}, err
	}
	res := CResult{
		Merges:         a.Exec.Stats.Merges,
		BlocksAnalyzed: a.Stats.BlocksAnalyzed,
		CacheHits:      a.Stats.CacheHits,
		FixpointIters:  a.Stats.FixpointIters,
		SolverQueries:  a.Stats.SolverQueries,
	}
	if d := a.Degraded(); d != nil {
		res.Degraded = true
		res.Fault = fault.ClassOf(d).String()
		res.FaultDetail = d.Error()
	}
	res.Timeouts = a.Stats.Faults.Of(fault.Timeout) + a.Stats.Faults.Of(fault.Canceled)
	res.PanicsRecovered = a.Stats.Faults.Of(fault.WorkerPanic)
	res.PathsTruncated = a.Stats.Faults.Truncations()
	clones1, shared1, writes1 := symexec.MemoryStats()
	res.MemClones, res.SharedCells, res.MemWrites = clones1-clones0, shared1-shared0, writes1-writes0
	if eng != nil {
		es := eng.Snapshot()
		res.MemoHits = int(es.MemoHits)
		res.MemoMisses = int(es.MemoMisses)
		res.SolverTime = es.SolverTime
		res.QuickDecided = int(es.QuickDecided)
		res.Slices = int(es.Slices)
		res.MaxSlice = int(es.MaxSlice)
		res.CexHits = int(es.CexHits)
	}
	if sums != nil {
		res.SummaryComputed = sums.Computed
		res.SummaryMemHits = sums.MemHits
		res.SummaryDiskHits = sums.DiskHits
		res.SummaryCorrupt = sums.Corrupt
		res.SummaryInstantiated = sums.Instantiated()
		res.SummaryFallbacks = sums.Fallbacks()
	}
	for _, w := range a.Warnings {
		res.Warnings = append(res.Warnings, w.String())
	}
	if m := cfg.Metrics; m != nil {
		eng.PublishMetrics()
		m.Gauge("mixy.blocks_analyzed").Set(int64(res.BlocksAnalyzed))
		m.Gauge("mixy.cache_hits").Set(int64(res.CacheHits))
		m.Gauge("mixy.fixpoint_iters").Set(int64(res.FixpointIters))
		m.Gauge("mixy.warnings").Set(int64(len(res.Warnings)))
		m.Gauge("symexec.mem.clones").Set(res.MemClones)
		m.Gauge("symexec.mem.shared_cells").Set(res.SharedCells)
		m.Gauge("symexec.mem.writes").Set(res.MemWrites)
		if sums != nil {
			m.Gauge("mixy.summaries.computed").Set(int64(res.SummaryComputed))
			m.Gauge("mixy.summaries.mem_hits").Set(int64(res.SummaryMemHits))
			m.Gauge("mixy.summaries.disk_hits").Set(int64(res.SummaryDiskHits))
			m.Gauge("mixy.summaries.corrupt").Set(int64(res.SummaryCorrupt))
			m.Gauge("mixy.summaries.instantiated").Set(res.SummaryInstantiated)
			m.Gauge("mixy.summaries.fallbacks").Set(res.SummaryFallbacks)
		}
		var deg int64
		if res.Degraded {
			deg = 1
		}
		m.Gauge("mixy.degraded").Set(deg)
	}
	return res, nil
}
